//! Per-node mesh state: the covering-based forwarding decisions.
//!
//! Wraps one [`psc_broker::Broker`] routing table and turns every
//! subscription event into a *plan* — which links to forward on, which
//! previously forwarded subscriptions to retract — computed entirely
//! under the node's mesh lock and executed by the caller **after**
//! releasing it. That discipline (compute under lock, send without it)
//! is what keeps concurrent opposite-direction traffic on a chain from
//! deadlocking: no thread ever waits on a network round trip while
//! holding mesh state.
//!
//! Covering semantics:
//!
//! - *Suppression* uses the configured [`CoveringPolicy`] — the paper's
//!   probabilistic group checker when so configured, which may
//!   erroneously suppress with the configured `δ`.
//! - *Retract-and-replace* (a new subscription subsumes previously
//!   forwarded ones) uses the exact pairwise checker regardless of
//!   policy: retracting a subscription that is **not** actually covered
//!   would silently lose deliveries, and unlike suppression the paper's
//!   error budget does not pay for that.

use psc_broker::{Broker, BrokerId, CoveringPolicy};
use psc_core::PairwiseChecker;
use psc_model::{Publication, Subscription, SubscriptionId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// What to send on one link after a mesh decision: forwards first (so a
/// covering replacement is installed upstream before anything it covers
/// is retracted), then retracts.
#[derive(Debug, Clone)]
pub(crate) struct ForwardPlan {
    /// The link to send on.
    pub to: BrokerId,
    /// Subscriptions to forward, in order.
    pub forward: Vec<(SubscriptionId, Subscription)>,
    /// Subscription ids to retract, after the forwards.
    pub retract: Vec<SubscriptionId>,
}

/// Outcome of installing one subscription into the mesh.
#[derive(Debug, Default)]
pub(crate) struct InstallOutcome {
    /// Per-link sends to execute (lock released).
    pub plans: Vec<ForwardPlan>,
    /// Links on which the subscription was withheld by covering.
    pub suppressed: u64,
    /// The id was already seen here with the *same* body (cycle/resync
    /// duplicate) — nothing changed and nothing needs sending.
    pub duplicate: bool,
    /// The id was already seen here with a *different* body — an id
    /// collision, never an idempotent retransmission. Nothing was
    /// installed; the caller must reject rather than ack, or the
    /// colliding subscriber silently gets no deliveries anywhere.
    pub conflict: bool,
}

/// One node's broker tables plus the covering policy and its RNG.
pub(crate) struct MeshState {
    broker: Broker,
    policy: CoveringPolicy,
    rng: StdRng,
    neighbors: Vec<BrokerId>,
}

impl MeshState {
    pub(crate) fn new(
        id: BrokerId,
        neighbors: Vec<BrokerId>,
        policy: CoveringPolicy,
        seed: u64,
    ) -> MeshState {
        MeshState {
            broker: Broker::new(id),
            policy,
            rng: StdRng::seed_from_u64(seed),
            neighbors,
        }
    }

    /// Installs a subscription arriving from a local client (`from:
    /// None`) or a peer broker, and plans the onward forwards.
    pub(crate) fn install(
        &mut self,
        from: Option<BrokerId>,
        id: SubscriptionId,
        sub: Subscription,
    ) -> InstallOutcome {
        if self.broker.has_seen(id) {
            // Only an exact body match is an idempotent duplicate
            // (resync retransmission or routing cycle); a different
            // body under a seen id is a collision and must surface as
            // an error, never a silent success ack.
            if self.broker.subscription_body(id) != Some(&sub) {
                return InstallOutcome {
                    conflict: true,
                    ..InstallOutcome::default()
                };
            }
            // A duplicate from a peer still refreshes reverse-path
            // provenance: after a crash this node may have recovered the
            // subscription from its WAL as *local* (the log carries no
            // provenance), and the peer's resync is then the only signal
            // that publications must route back out on that link.
            if let Some(link) = from {
                self.broker.remove_received(link, id);
                self.broker.add_received(link, id, sub);
            }
            return InstallOutcome {
                duplicate: true,
                ..InstallOutcome::default()
            };
        }
        self.broker.mark_seen(id);
        match from {
            None => self.broker.add_local(id, sub.clone()),
            Some(link) => self.broker.add_received(link, id, sub.clone()),
        }
        let mut outcome = InstallOutcome::default();
        for to in self.neighbors.clone() {
            if Some(to) == from {
                continue;
            }
            let sent = self.broker.sent_entries(to);
            let sent_subs: Vec<Subscription> = sent.iter().map(|(_, s)| s.clone()).collect();
            if self.policy.is_covered(&sub, &sent_subs, &mut self.rng) {
                self.broker.add_suppressed(to, id, sub.clone());
                outcome.suppressed += 1;
                continue;
            }
            // Retract-and-replace: previously forwarded subscriptions
            // the new one exactly subsumes become redundant upstream.
            // They move to the suppressed table so a later retraction
            // of `sub` can promote them back.
            let mut retract = Vec::new();
            for (old_id, old_sub) in &sent {
                if PairwiseChecker.is_covered(old_sub, std::slice::from_ref(&sub)) {
                    retract.push(*old_id);
                }
            }
            self.broker.add_sent(to, id, sub.clone());
            for &old_id in &retract {
                let old_sub = sent
                    .iter()
                    .find(|(i, _)| *i == old_id)
                    .map(|(_, s)| s.clone())
                    .expect("retract id came from the sent set");
                self.broker.remove_sent(to, old_id);
                self.broker.add_suppressed(to, old_id, old_sub);
            }
            outcome.plans.push(ForwardPlan {
                to,
                forward: vec![(id, sub.clone())],
                retract,
            });
        }
        outcome
    }

    /// Removes a subscription (local unsubscribe or a peer's retract)
    /// and plans the onward retracts plus any covering promotions.
    ///
    /// Returns whether the id was installed here at all.
    pub(crate) fn remove(
        &mut self,
        from: Option<BrokerId>,
        id: SubscriptionId,
    ) -> (bool, Vec<ForwardPlan>) {
        let existed = match from {
            None => self.broker.remove_local(id),
            Some(link) => self.broker.remove_received(link, id),
        };
        if !existed {
            return (false, Vec::new());
        }
        self.broker.unmark_seen(id);
        let mut plans = Vec::new();
        for to in self.neighbors.clone() {
            if Some(to) == from {
                continue;
            }
            if !self.broker.remove_sent(to, id) {
                continue;
            }
            // Promotion: suppressed subscriptions on this link may have
            // been covered only by the one that just left. Re-check each
            // against the shrinking sent set; promoted ones join it (and
            // therefore cover later candidates in this same pass).
            let mut promoted = Vec::new();
            for (sid, ssub) in self.broker.take_suppressed(to) {
                let sent_subs: Vec<Subscription> = self
                    .broker
                    .sent_entries(to)
                    .into_iter()
                    .map(|(_, s)| s)
                    .collect();
                if self.policy.is_covered(&ssub, &sent_subs, &mut self.rng) {
                    self.broker.add_suppressed(to, sid, ssub);
                } else {
                    self.broker.add_sent(to, sid, ssub.clone());
                    promoted.push((sid, ssub));
                }
            }
            plans.push(ForwardPlan {
                to,
                forward: promoted,
                retract: vec![id],
            });
        }
        // The id itself can no longer be a promotion candidate anywhere.
        self.broker.remove_suppressed_everywhere(id);
        (true, plans)
    }

    /// Links a publication must be forwarded on: every neighbor (except
    /// the one it arrived from) that forwarded us a matching interest.
    pub(crate) fn publish_targets(&self, from: Option<BrokerId>, p: &Publication) -> Vec<BrokerId> {
        self.neighbors
            .iter()
            .copied()
            .filter(|&to| Some(to) != from && self.broker.link_wants(to, p))
            .collect()
    }

    /// The full covering-filtered sent set for `to` — what a reconnect
    /// resync re-forwards so a restarted peer rebuilds its tables.
    pub(crate) fn resync_entries(&self, to: BrokerId) -> Vec<(SubscriptionId, Subscription)> {
        self.broker.sent_entries(to)
    }

    /// Ids currently forwarded on the link to `to` (test observability).
    #[cfg(test)]
    pub(crate) fn forwarded_ids(&self, to: BrokerId) -> Vec<SubscriptionId> {
        self.broker
            .sent_entries(to)
            .into_iter()
            .map(|(i, _)| i)
            .collect()
    }

    /// Ids currently suppressed on the link to `to` (test observability).
    #[cfg(test)]
    pub(crate) fn suppressed_ids(&self, to: BrokerId) -> Vec<SubscriptionId> {
        self.broker
            .suppressed_entries(to)
            .into_iter()
            .map(|(i, _)| i)
            .collect()
    }

    /// Subscriptions forwarded on the link to `to`, with bodies — the
    /// covered-forwarding invariant check reads both tables.
    pub(crate) fn forwarded_entries(&self, to: BrokerId) -> Vec<(SubscriptionId, Subscription)> {
        self.broker.sent_entries(to)
    }

    /// Suppressed entries with bodies, for the same invariant check.
    pub(crate) fn suppressed_entries(&self, to: BrokerId) -> Vec<(SubscriptionId, Subscription)> {
        self.broker.suppressed_entries(to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psc_model::{Range, Schema};

    fn schema() -> Schema {
        Schema::uniform(1, 0, 99)
    }

    fn sub(schema: &Schema, lo: i64, hi: i64) -> Subscription {
        Subscription::from_ranges(schema, vec![Range::new(lo, hi).unwrap()]).unwrap()
    }

    fn mesh() -> MeshState {
        MeshState::new(BrokerId(0), vec![BrokerId(1)], CoveringPolicy::Pairwise, 7)
    }

    #[test]
    fn narrow_after_broad_is_suppressed() {
        let s = schema();
        let mut m = mesh();
        let broad = m.install(None, SubscriptionId(1), sub(&s, 0, 90));
        assert_eq!(broad.plans.len(), 1);
        assert_eq!(broad.suppressed, 0);
        let narrow = m.install(None, SubscriptionId(2), sub(&s, 10, 20));
        assert!(narrow.plans.is_empty());
        assert_eq!(narrow.suppressed, 1);
        assert_eq!(m.forwarded_ids(BrokerId(1)), vec![SubscriptionId(1)]);
        assert_eq!(m.suppressed_ids(BrokerId(1)), vec![SubscriptionId(2)]);
    }

    #[test]
    fn broad_after_narrow_retracts_and_replaces() {
        let s = schema();
        let mut m = mesh();
        m.install(None, SubscriptionId(1), sub(&s, 10, 20));
        m.install(None, SubscriptionId(2), sub(&s, 40, 50));
        let broad = m.install(None, SubscriptionId(3), sub(&s, 0, 90));
        assert_eq!(broad.plans.len(), 1);
        let plan = &broad.plans[0];
        assert_eq!(plan.forward.len(), 1);
        assert_eq!(plan.forward[0].0, SubscriptionId(3));
        let mut retracted = plan.retract.clone();
        retracted.sort();
        assert_eq!(retracted, vec![SubscriptionId(1), SubscriptionId(2)]);
        assert_eq!(m.forwarded_ids(BrokerId(1)), vec![SubscriptionId(3)]);
    }

    #[test]
    fn removing_the_cover_promotes_suppressed_subscriptions() {
        let s = schema();
        let mut m = mesh();
        m.install(None, SubscriptionId(1), sub(&s, 0, 90));
        m.install(None, SubscriptionId(2), sub(&s, 10, 60));
        m.install(None, SubscriptionId(3), sub(&s, 20, 30));
        let (existed, plans) = m.remove(None, SubscriptionId(1));
        assert!(existed);
        assert_eq!(plans.len(), 1);
        // 10..60 is promoted; 20..30 stays suppressed under it.
        assert_eq!(plans[0].retract, vec![SubscriptionId(1)]);
        assert_eq!(
            plans[0].forward.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
            vec![SubscriptionId(2)]
        );
        assert_eq!(m.forwarded_ids(BrokerId(1)), vec![SubscriptionId(2)]);
        assert_eq!(m.suppressed_ids(BrokerId(1)), vec![SubscriptionId(3)]);
    }

    #[test]
    fn duplicates_and_unknown_removals_are_inert() {
        let s = schema();
        let mut m = mesh();
        m.install(None, SubscriptionId(1), sub(&s, 0, 9));
        let dup = m.install(Some(BrokerId(1)), SubscriptionId(1), sub(&s, 0, 9));
        assert!(dup.duplicate);
        assert!(!dup.conflict);
        assert!(dup.plans.is_empty());
        let (existed, plans) = m.remove(None, SubscriptionId(99));
        assert!(!existed);
        assert!(plans.is_empty());
    }

    #[test]
    fn id_collision_with_different_body_is_a_conflict() {
        let s = schema();
        let mut m = mesh();
        m.install(None, SubscriptionId(1), sub(&s, 0, 9));
        // Same id, different filter — from a local client or a peer —
        // must be flagged, not swallowed as an idempotent duplicate.
        for from in [None, Some(BrokerId(1))] {
            let clash = m.install(from, SubscriptionId(1), sub(&s, 50, 60));
            assert!(clash.conflict);
            assert!(!clash.duplicate);
            assert!(clash.plans.is_empty());
        }
        // The original install is untouched.
        assert_eq!(m.forwarded_ids(BrokerId(1)), vec![SubscriptionId(1)]);
        let p = psc_model::Publication::from_values(&s, vec![55]).unwrap();
        assert!(m.publish_targets(Some(BrokerId(1)), &p).is_empty());
    }

    #[test]
    fn publishes_route_only_toward_matching_interests() {
        let s = schema();
        let mut m = MeshState::new(
            BrokerId(1),
            vec![BrokerId(0), BrokerId(2)],
            CoveringPolicy::Pairwise,
            7,
        );
        m.install(Some(BrokerId(2)), SubscriptionId(5), sub(&s, 0, 49));
        let p = psc_model::Publication::from_values(&s, vec![25]).unwrap();
        assert_eq!(m.publish_targets(None, &p), vec![BrokerId(2)]);
        // Never back toward the arrival link.
        assert!(m.publish_targets(Some(BrokerId(2)), &p).is_empty());
        let miss = psc_model::Publication::from_values(&s, vec![75]).unwrap();
        assert!(m.publish_targets(None, &miss).is_empty());
    }
}
