//! A counting-style per-attribute interval index.
//!
//! The counting algorithm (Yan & García-Molina, TODS 1994 — reference \[18\]
//! of the paper) decomposes subscriptions into per-attribute predicates,
//! finds the predicates satisfied by a publication attribute-by-attribute,
//! and counts hits per subscription: a subscription matches exactly when all
//! of its predicates are hit. Because our data model constrains *every*
//! attribute (unconstrained ones use the full domain), the hit target is
//! always `m`.
//!
//! Per attribute, intervals are kept sorted by lower bound; a stab query
//! binary-searches the last candidate and scans backward, pruning with the
//! maximum upper bound seen per prefix (a "max-hi prefix" array) so that a
//! query costs `O(log n + answers)` amortized for non-pathological interval
//! sets.

use psc_model::{Publication, Subscription, SubscriptionId};
use std::collections::HashMap;

#[derive(Debug, Clone)]
struct AttrIndex {
    /// `(lo, hi, slot)` sorted by `lo`.
    intervals: Vec<(i64, i64, usize)>,
    /// `prefix_max_hi[i]` = max of `hi` over `intervals[..=i]`.
    prefix_max_hi: Vec<i64>,
}

impl AttrIndex {
    fn build(mut intervals: Vec<(i64, i64, usize)>) -> Self {
        intervals.sort_unstable_by_key(|&(lo, _, _)| lo);
        let mut prefix_max_hi = Vec::with_capacity(intervals.len());
        let mut max_hi = i64::MIN;
        for &(_, hi, _) in &intervals {
            max_hi = max_hi.max(hi);
            prefix_max_hi.push(max_hi);
        }
        AttrIndex {
            intervals,
            prefix_max_hi,
        }
    }

    /// Calls `hit` for every slot whose interval contains `v`.
    fn stab(&self, v: i64, mut hit: impl FnMut(usize)) {
        // Last interval with lo <= v.
        let end = self.intervals.partition_point(|&(lo, _, _)| lo <= v);
        for i in (0..end).rev() {
            // All of intervals[..=i] end below v: nothing further can match.
            if self.prefix_max_hi[i] < v {
                break;
            }
            if self.intervals[i].1 >= v {
                hit(self.intervals[i].2);
            }
        }
    }
}

/// Counting-algorithm matcher over range subscriptions.
///
/// Mutations (insert/remove) are buffered and applied by rebuilding the
/// per-attribute indexes lazily on the next query — the classic trade-off of
/// index-based pub/sub engines, which assume subscription churn is far rarer
/// than publications (Section 1 of the paper).
///
/// # Example
/// ```
/// use psc_matcher::CountingIndex;
/// use psc_model::{Schema, Subscription, Publication, SubscriptionId};
///
/// let schema = Schema::uniform(2, 0, 99);
/// let mut idx = CountingIndex::new(&schema);
/// idx.insert(SubscriptionId(7),
///     Subscription::builder(&schema).range("x0", 10, 20).build()?);
/// let p = Publication::builder(&schema).set("x0", 12).set("x1", 0).build()?;
/// assert_eq!(idx.matches(&p), vec![SubscriptionId(7)]);
/// # Ok::<(), psc_model::ModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CountingIndex {
    arity: usize,
    /// Slot-addressed storage; `None` marks a removed slot.
    subs: Vec<Option<(SubscriptionId, Subscription)>>,
    by_id: HashMap<SubscriptionId, Vec<usize>>,
    indexes: Option<Vec<AttrIndex>>,
    live: usize,
}

impl CountingIndex {
    /// Creates an empty index for subscriptions of the given schema.
    pub fn new(schema: &psc_model::Schema) -> Self {
        CountingIndex {
            arity: schema.len(),
            subs: Vec::new(),
            by_id: HashMap::new(),
            indexes: None,
            live: 0,
        }
    }

    /// Number of live subscriptions.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no live subscriptions exist.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Adds a subscription under `id`.
    ///
    /// # Panics
    /// Panics if the subscription arity differs from the index schema.
    pub fn insert(&mut self, id: SubscriptionId, sub: Subscription) {
        assert_eq!(sub.arity(), self.arity, "subscription arity mismatch");
        let slot = self.subs.len();
        self.subs.push(Some((id, sub)));
        self.by_id.entry(id).or_default().push(slot);
        self.live += 1;
        self.indexes = None;
    }

    /// Removes all subscriptions with `id`; returns how many were removed.
    pub fn remove(&mut self, id: SubscriptionId) -> usize {
        let slots = self.by_id.remove(&id).unwrap_or_default();
        let mut removed = 0;
        for slot in slots {
            if self.subs[slot].take().is_some() {
                removed += 1;
            }
        }
        if removed > 0 {
            self.live -= removed;
            self.indexes = None;
        }
        removed
    }

    fn rebuild(&mut self) {
        let mut per_attr: Vec<Vec<(i64, i64, usize)>> = vec![Vec::new(); self.arity];
        for (slot, entry) in self.subs.iter().enumerate() {
            if let Some((_, sub)) = entry {
                for (j, r) in sub.ranges().iter().enumerate() {
                    per_attr[j].push((r.lo(), r.hi(), slot));
                }
            }
        }
        self.indexes = Some(per_attr.into_iter().map(AttrIndex::build).collect());
    }

    /// Ids of all subscriptions matching `p`, in slot (insertion) order.
    pub fn matches(&mut self, p: &Publication) -> Vec<SubscriptionId> {
        assert_eq!(p.values().len(), self.arity, "publication arity mismatch");
        if self.indexes.is_none() {
            self.rebuild();
        }
        let indexes = self.indexes.as_ref().expect("just rebuilt");
        let mut counts: HashMap<usize, usize> = HashMap::new();
        for (j, &v) in p.values().iter().enumerate() {
            indexes[j].stab(v, |slot| {
                *counts.entry(slot).or_insert(0) += 1;
            });
        }
        let mut hit_slots: Vec<usize> = counts
            .into_iter()
            .filter_map(|(slot, c)| (c == self.arity).then_some(slot))
            .collect();
        hit_slots.sort_unstable();
        hit_slots
            .into_iter()
            .map(|slot| self.subs[slot].as_ref().expect("live slot").0)
            .collect()
    }

    /// The ranges stored for `id` (first live copy), if present.
    pub fn get(&self, id: SubscriptionId) -> Option<&Subscription> {
        self.by_id.get(&id).and_then(|slots| {
            slots
                .iter()
                .find_map(|&slot| self.subs[slot].as_ref().map(|(_, s)| s))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NaiveMatcher;
    use proptest::prelude::*;
    use psc_model::Schema;

    fn schema() -> Schema {
        Schema::uniform(3, 0, 99)
    }

    fn sub3(schema: &Schema, a: (i64, i64), b: (i64, i64), c: (i64, i64)) -> Subscription {
        Subscription::builder(schema)
            .range("x0", a.0, a.1)
            .range("x1", b.0, b.1)
            .range("x2", c.0, c.1)
            .build()
            .unwrap()
    }

    #[test]
    fn single_subscription_roundtrip() {
        let schema = schema();
        let mut idx = CountingIndex::new(&schema);
        idx.insert(SubscriptionId(1), sub3(&schema, (10, 20), (0, 99), (5, 5)));
        let hit = Publication::builder(&schema)
            .set("x0", 15)
            .set("x1", 42)
            .set("x2", 5)
            .build()
            .unwrap();
        let miss = Publication::builder(&schema)
            .set("x0", 15)
            .set("x1", 42)
            .set("x2", 6)
            .build()
            .unwrap();
        assert_eq!(idx.matches(&hit), vec![SubscriptionId(1)]);
        assert!(idx.matches(&miss).is_empty());
    }

    #[test]
    fn remove_then_match() {
        let schema = schema();
        let mut idx = CountingIndex::new(&schema);
        idx.insert(SubscriptionId(1), sub3(&schema, (0, 99), (0, 99), (0, 99)));
        idx.insert(SubscriptionId(2), sub3(&schema, (0, 99), (0, 99), (0, 99)));
        assert_eq!(idx.remove(SubscriptionId(1)), 1);
        assert_eq!(idx.len(), 1);
        let p = Publication::builder(&schema)
            .set("x0", 1)
            .set("x1", 1)
            .set("x2", 1)
            .build()
            .unwrap();
        assert_eq!(idx.matches(&p), vec![SubscriptionId(2)]);
        assert_eq!(idx.remove(SubscriptionId(99)), 0);
    }

    #[test]
    fn get_returns_live_subscription() {
        let schema = schema();
        let mut idx = CountingIndex::new(&schema);
        let s = sub3(&schema, (1, 2), (3, 4), (5, 6));
        idx.insert(SubscriptionId(9), s.clone());
        assert_eq!(idx.get(SubscriptionId(9)), Some(&s));
        idx.remove(SubscriptionId(9));
        assert_eq!(idx.get(SubscriptionId(9)), None);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_counting_equals_naive(
            subs in proptest::collection::vec(
                (0i64..90, 0i64..20, 0i64..90, 0i64..20, 0i64..90, 0i64..20), 0..25),
            pubs in proptest::collection::vec((0i64..100, 0i64..100, 0i64..100), 1..20),
        ) {
            let schema = schema();
            let mut idx = CountingIndex::new(&schema);
            let mut naive = NaiveMatcher::new();
            for (i, (a, aw, b, bw, c, cw)) in subs.into_iter().enumerate() {
                let s = sub3(
                    &schema,
                    (a, (a + aw).min(99)),
                    (b, (b + bw).min(99)),
                    (c, (c + cw).min(99)),
                );
                idx.insert(SubscriptionId(i as u64), s.clone());
                naive.insert(SubscriptionId(i as u64), s);
            }
            for (x, y, z) in pubs {
                let p = Publication::builder(&schema)
                    .set("x0", x).set("x1", y).set("x2", z).build().unwrap();
                let mut a = idx.matches(&p);
                let mut b = naive.matches(&p);
                a.sort_unstable_by_key(|id| id.0);
                b.sort_unstable_by_key(|id| id.0);
                prop_assert_eq!(a, b);
            }
        }
    }
}
