//! # psc-matcher
//!
//! Publication-matching engines for content-based publish/subscribe, built
//! around the covered/uncovered split of Algorithm 5 in the Middleware 2006
//! subsumption paper:
//!
//! - [`NaiveMatcher`] — flat linear scan over all subscriptions; the
//!   correctness baseline.
//! - [`CountingIndex`] — per-attribute interval index in the style of Yan &
//!   García-Molina's counting algorithm (the ancestor of the matching
//!   engines the paper cites as related work).
//! - [`CoveringStore`] — the paper's two-phase store: publications are
//!   matched against the *uncovered* (active) set first, and the covered set
//!   is consulted only on a hit; covered entries remember their covering
//!   parents so irrelevant checks are skipped (the paper's "multi-level"
//!   optimization).
//! - [`BoxMatcher`] — approximate matching for imprecise (box-shaped)
//!   publications, the extension Section 1 of the paper advocates.
//!
//! All engines return the same match sets; property tests in this crate and
//! differential tests in `tests/` enforce that.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod approx;
pub mod counting;
pub mod cover_index;
pub mod naive;
pub mod store;

pub use approx::{ApproxMatch, BoxMatcher};
pub use counting::CountingIndex;
pub use cover_index::CoverIndex;
pub use naive::NaiveMatcher;
pub use store::{
    CoverParents, CoveringStore, InsertOutcome, MatchStats, RestoreError, StoreStats, StoredEntry,
};
