//! The covered/uncovered subscription store (Algorithm 5 of the paper).
//!
//! New subscriptions are checked for coverage against the *active*
//! (uncovered) set. Covered subscriptions are parked in a covered pool —
//! they still belong to subscribers, but routing and first-phase matching
//! ignore them. Publication matching then follows Algorithm 5:
//!
//! 1. match `p` against the active set;
//! 2. **only if** something matched, match `p` against the covered pool —
//!    a publication matching no active subscription cannot match a covered
//!    one (every covered subscription lies inside the union of actives).
//!
//! The paper's optimization ("remembering for each element the
//! subscription(s) that cover it") is implemented as parent links: a covered
//! entry whose cover was *pairwise* records the single covering parent and is
//! probed only when that parent matched; group-covered entries record the
//! active set snapshot's ids and are probed whenever phase 1 hit anything.
//!
//! Unsubscription follows Section 5's note: removing an active subscription
//! re-evaluates its covered dependents — still-covered ones are re-parented,
//! the rest are promoted to active.

use psc_core::{CoverAnswer, DecisionStage, SubsumptionChecker};
use psc_model::{Publication, Range, Subscription, SubscriptionId};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// How a covered entry is linked to its cover.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoverParents {
    /// Covered pairwise by a single active subscription.
    Single(SubscriptionId),
    /// Covered by a group; probing is gated only on "phase 1 hit anything".
    Group,
}

/// One covered-pool subscription with its cover linkage. (Active entries
/// are stored as id/subscription columns directly on the store.)
#[derive(Debug, Clone)]
pub struct StoredEntry {
    /// The subscription's id.
    pub id: SubscriptionId,
    /// The subscription itself.
    pub sub: Subscription,
    /// Cover linkage to the active set.
    pub parents: CoverParents,
}

/// Outcome of inserting a subscription.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum InsertOutcome {
    /// The subscription joined the active set (it was not covered). Carries
    /// the ids of previously-active subscriptions that the newcomer covers
    /// pairwise and that were therefore demoted to the covered pool.
    Active {
        /// Ids demoted under the new subscription.
        demoted: Vec<SubscriptionId>,
    },
    /// The subscription was covered and parked.
    Covered {
        /// Pairwise parent when the cover was pairwise.
        parents: CoverParents,
        /// Error bound of the covering decision (0 for deterministic).
        error_bound: f64,
    },
}

impl InsertOutcome {
    /// Whether the subscription became active.
    pub fn is_active(&self) -> bool {
        matches!(self, InsertOutcome::Active { .. })
    }
}

/// Error raised by [`CoveringStore::from_entries`] when an exported image
/// is internally inconsistent (corrupt or hand-built incorrectly).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// The same id appears twice in the image.
    DuplicateId(SubscriptionId),
    /// A covered entry names a pairwise parent that is not active in the
    /// image.
    UnknownParent {
        /// The covered entry whose link is dangling.
        child: SubscriptionId,
        /// The missing parent id.
        parent: SubscriptionId,
    },
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::DuplicateId(id) => {
                write!(f, "store image holds subscription id {id} twice")
            }
            RestoreError::UnknownParent { child, parent } => {
                write!(
                    f,
                    "covered entry {child} names parent {parent}, which is not active in the image"
                )
            }
        }
    }
}

impl std::error::Error for RestoreError {}

/// Match-phase statistics (the cost model of Algorithm 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MatchStats {
    /// Subscription tests against the active set.
    pub active_checked: u64,
    /// Subscription tests against the covered pool.
    pub covered_checked: u64,
    /// Covered entries skipped thanks to parent gating.
    pub covered_skipped: u64,
    /// Publications that matched nothing active (phase 2 skipped wholesale).
    pub phase2_skipped: u64,
}

/// A coherent point-in-time view of a store's size and match counters,
/// scraped by the service layer's metrics aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StoreStats {
    /// Currently active (uncovered) subscriptions.
    pub active: usize,
    /// Currently covered (parked) subscriptions.
    pub covered: usize,
    /// Accumulated match-phase counters.
    pub match_stats: MatchStats,
}

/// The two-phase covered/uncovered subscription store.
///
/// # Example
/// ```
/// use psc_matcher::CoveringStore;
/// use psc_core::SubsumptionChecker;
/// use psc_model::{Schema, Subscription, Publication, SubscriptionId};
/// use rand::SeedableRng;
///
/// let schema = Schema::uniform(1, 0, 99);
/// let mut store = CoveringStore::new(SubsumptionChecker::default());
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let wide = Subscription::builder(&schema).range("x0", 0, 50).build()?;
/// let narrow = Subscription::builder(&schema).range("x0", 10, 20).build()?;
/// store.insert(SubscriptionId(1), wide, &mut rng);
/// let out = store.insert(SubscriptionId(2), narrow, &mut rng);
/// assert!(!out.is_active()); // narrow ⊑ wide: parked as covered
/// assert_eq!(store.active_len(), 1);
///
/// let p = Publication::builder(&schema).set("x0", 15).build()?;
/// let matched = store.match_publication(&p);
/// assert_eq!(matched, vec![SubscriptionId(1), SubscriptionId(2)]);
/// # Ok::<(), psc_model::ModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CoveringStore {
    checker: SubsumptionChecker,
    /// Active entries as two index-aligned columns: ids and subscriptions.
    /// The column layout lends `&[Subscription]` straight to the
    /// admission-time cover check without cloning, and active entries
    /// carry no parent links anyway.
    active_ids: Vec<SubscriptionId>,
    active_subs: Vec<Subscription>,
    covered: Vec<StoredEntry>,
    stats: MatchStats,
}

impl CoveringStore {
    /// Creates an empty store using `checker` for coverage decisions.
    pub fn new(checker: SubsumptionChecker) -> Self {
        CoveringStore {
            checker,
            active_ids: Vec::new(),
            active_subs: Vec::new(),
            covered: Vec::new(),
            stats: MatchStats::default(),
        }
    }

    /// Number of active (uncovered) subscriptions.
    pub fn active_len(&self) -> usize {
        self.active_ids.len()
    }

    /// Number of covered (parked) subscriptions.
    pub fn covered_len(&self) -> usize {
        self.covered.len()
    }

    /// Total stored subscriptions.
    pub fn len(&self) -> usize {
        self.active_ids.len() + self.covered.len()
    }

    /// Whether the store holds no subscriptions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Accumulated matching statistics.
    pub fn stats(&self) -> MatchStats {
        self.stats
    }

    /// Resets the matching statistics.
    pub fn reset_stats(&mut self) {
        self.stats = MatchStats::default();
    }

    /// The active subscriptions (for routing decisions — this is the set a
    /// broker forwards upstream).
    pub fn active_subscriptions(&self) -> impl Iterator<Item = (SubscriptionId, &Subscription)> {
        self.active_ids.iter().copied().zip(self.active_subs.iter())
    }

    /// Inserts a subscription, deciding its covered status with the
    /// configured checker.
    ///
    /// # Panics
    /// Panics if `id` is already stored (ids must be unique).
    pub fn insert<R: Rng + ?Sized>(
        &mut self,
        id: SubscriptionId,
        sub: Subscription,
        rng: &mut R,
    ) -> InsertOutcome {
        assert!(
            !self.contains(id),
            "subscription id {id} already stored; ids must be unique"
        );
        let decision = self.checker.check(&sub, &self.active_subs, rng);
        match decision.answer {
            CoverAnswer::Covered { error_bound } => {
                let parents = if decision.stage == DecisionStage::PairwiseCover {
                    // Recover the pairwise parent for precise gating.
                    let parent = self
                        .active_subs
                        .iter()
                        .position(|a| a.covers(&sub))
                        .expect("pairwise stage implies a covering active entry");
                    CoverParents::Single(self.active_ids[parent])
                } else {
                    CoverParents::Group
                };
                self.covered.push(StoredEntry {
                    id,
                    sub,
                    parents: parents.clone(),
                });
                InsertOutcome::Covered {
                    parents,
                    error_bound,
                }
            }
            CoverAnswer::NotCovered { .. } => {
                // Demote actives that the newcomer covers pairwise.
                let mut demoted = Vec::new();
                let mut remaining_ids = Vec::with_capacity(self.active_ids.len());
                let mut remaining_subs = Vec::with_capacity(self.active_subs.len());
                for (entry_id, entry_sub) in
                    self.active_ids.drain(..).zip(self.active_subs.drain(..))
                {
                    if sub.covers(&entry_sub) {
                        demoted.push(entry_id);
                        self.covered.push(StoredEntry {
                            id: entry_id,
                            sub: entry_sub,
                            parents: CoverParents::Single(id),
                        });
                    } else {
                        remaining_ids.push(entry_id);
                        remaining_subs.push(entry_sub);
                    }
                }
                self.active_ids = remaining_ids;
                self.active_subs = remaining_subs;
                // Parent gates must always reference *active* entries: rewire
                // children of demoted parents to the newcomer, which covers
                // them transitively (new ⊇ parent ⊇ child).
                if !demoted.is_empty() {
                    for e in &mut self.covered {
                        if let CoverParents::Single(p) = &e.parents {
                            if demoted.contains(p) {
                                e.parents = CoverParents::Single(id);
                            }
                        }
                    }
                }
                self.active_ids.push(id);
                self.active_subs.push(sub);
                InsertOutcome::Active { demoted }
            }
        }
    }

    /// Admits a batch of subscriptions, returning each insertion outcome in
    /// the order of the *input* batch.
    ///
    /// The batch is internally admitted widest-first (descending
    /// [`Subscription::size`], ties by id): when a broad subscription and
    /// the narrow ones it covers arrive together, admitting the broad one
    /// first parks the narrow ones immediately instead of letting them
    /// transit the active set, which both raises the suppression ratio and
    /// avoids demotion churn. Outcomes are identical to some sequential
    /// insertion order, so all `CoveringStore` invariants hold.
    ///
    /// # Panics
    /// Panics if any id is already stored or appears twice in the batch.
    pub fn admit_batch<R: Rng + ?Sized>(
        &mut self,
        batch: Vec<(SubscriptionId, Subscription)>,
        rng: &mut R,
    ) -> Vec<(SubscriptionId, InsertOutcome)> {
        let mut order: Vec<usize> = (0..batch.len()).collect();
        // Widest first; `sort_by` on the (negated-size, id) key is stable
        // and deterministic because LogVolume ordering is total on finite
        // sizes.
        order.sort_by(|&a, &b| {
            let (sa, sb) = (batch[a].1.size().ln(), batch[b].1.size().ln());
            sb.partial_cmp(&sa)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| batch[a].0.cmp(&batch[b].0))
        });
        let mut outcomes: Vec<Option<(SubscriptionId, InsertOutcome)>> = vec![None; batch.len()];
        let mut items: Vec<Option<(SubscriptionId, Subscription)>> =
            batch.into_iter().map(Some).collect();
        for slot in order {
            let (id, sub) = items[slot].take().expect("each slot admitted once");
            let outcome = self.insert(id, sub, rng);
            outcomes[slot] = Some((id, outcome));
        }
        outcomes
            .into_iter()
            .map(|o| o.expect("all slots admitted"))
            .collect()
    }

    /// A coherent snapshot of occupancy and match counters.
    pub fn stats_snapshot(&self) -> StoreStats {
        StoreStats {
            active: self.active_ids.len(),
            covered: self.covered.len(),
            match_stats: self.stats,
        }
    }

    /// Removes a subscription (active or covered).
    ///
    /// Removing an active subscription re-evaluates the covered entries that
    /// depended on it (Section 5's promotion rule). Returns `true` when the
    /// id existed. The RNG drives the re-evaluation cover checks.
    pub fn remove<R: Rng + ?Sized>(&mut self, id: SubscriptionId, rng: &mut R) -> bool {
        if let Some(pos) = self.covered.iter().position(|e| e.id == id) {
            self.covered.swap_remove(pos);
            return true;
        }
        let Some(pos) = self.active_ids.iter().position(|&a| a == id) else {
            return false;
        };
        self.active_ids.remove(pos);
        self.active_subs.remove(pos);

        // Re-evaluate dependents: single-parented children of the removed id
        // and all group-covered entries (their cover may have included it).
        let (mut to_recheck, keep): (Vec<StoredEntry>, Vec<StoredEntry>) =
            self.covered.drain(..).partition(|e| match &e.parents {
                CoverParents::Single(p) => *p == id,
                CoverParents::Group => true,
            });
        self.covered = keep;
        // Rechecking in insertion order keeps behavior deterministic.
        to_recheck.sort_by_key(|e| e.id);
        for entry in to_recheck {
            let _ = self.insert(entry.id, entry.sub, rng);
        }
        true
    }

    /// Whether `id` is stored (active or covered).
    pub fn contains(&self, id: SubscriptionId) -> bool {
        self.active_ids.contains(&id) || self.covered.iter().any(|e| e.id == id)
    }

    /// Algorithm 5: all subscription ids matching `p`, active first, then
    /// covered (each section in insertion order).
    pub fn match_publication(&mut self, p: &Publication) -> Vec<SubscriptionId> {
        let mut matched = Vec::new();
        let mut matched_active: HashSet<SubscriptionId> = HashSet::new();
        for (&id, sub) in self.active_ids.iter().zip(self.active_subs.iter()) {
            self.stats.active_checked += 1;
            if sub.matches(p) {
                matched.push(id);
                matched_active.insert(id);
            }
        }
        if matched.is_empty() {
            self.stats.phase2_skipped += 1;
            return matched;
        }
        for e in &self.covered {
            let gate_open = match &e.parents {
                CoverParents::Single(parent) => matched_active.contains(parent),
                CoverParents::Group => true,
            };
            if !gate_open {
                self.stats.covered_skipped += 1;
                continue;
            }
            self.stats.covered_checked += 1;
            if e.sub.matches(p) {
                matched.push(e.id);
            }
        }
        matched
    }

    /// Iterates the per-attribute bounds (`&[Range]`, schema order) of
    /// every stored subscription — active **and** covered.
    ///
    /// Covered subscriptions still belong to subscribers and still match
    /// publications (phase 2 of Algorithm 5), so any conservative summary
    /// of "what this store could possibly match" — e.g. the per-shard
    /// attribute-space summaries content-aware routing builds
    /// (`psc_service::routing`) — must fold in the covered pool too. This
    /// accessor exposes exactly that: the raw rectangle bounds, without
    /// cloning subscriptions or revealing the active/covered split.
    ///
    /// # Example
    /// ```
    /// use psc_matcher::CoveringStore;
    /// use psc_core::SubsumptionChecker;
    /// use psc_model::{Schema, Subscription, SubscriptionId};
    /// use rand::SeedableRng;
    ///
    /// let schema = Schema::uniform(1, 0, 99);
    /// let mut store = CoveringStore::new(SubsumptionChecker::default());
    /// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    /// let wide = Subscription::builder(&schema).range("x0", 10, 60).build()?;
    /// let narrow = Subscription::builder(&schema).range("x0", 20, 30).build()?;
    /// store.insert(SubscriptionId(1), wide, &mut rng);
    /// store.insert(SubscriptionId(2), narrow, &mut rng); // parked as covered
    ///
    /// // Both rectangles appear, covered or not: a summary built from
    /// // these bounds can never prune a publication the store matches.
    /// let lows: Vec<i64> = store.iter_bounds().map(|r| r[0].lo()).collect();
    /// assert_eq!(lows, vec![10, 20]);
    /// # Ok::<(), psc_model::ModelError>(())
    /// ```
    pub fn iter_bounds(&self) -> impl Iterator<Item = &[Range]> + '_ {
        self.active_subs
            .iter()
            .map(|s| s.ranges())
            .chain(self.covered.iter().map(|e| e.sub.ranges()))
    }

    /// Iterates every stored entry in the store's internal order — actives
    /// first (column order), then the covered pool — as
    /// `(id, subscription, parents)`, where `None` parents means active.
    ///
    /// This is the snapshot-encoding hook for durable storage: together
    /// with [`from_entries`](CoveringStore::from_entries) it round-trips a
    /// store *exactly* (same columns, same order, same parent links), so a
    /// store rebuilt from a snapshot behaves identically to the original —
    /// including which covered entries each publication probe skips.
    ///
    /// # Example
    /// ```
    /// use psc_matcher::CoveringStore;
    /// use psc_core::SubsumptionChecker;
    /// use psc_model::{Schema, Subscription, SubscriptionId};
    /// use rand::SeedableRng;
    ///
    /// let schema = Schema::uniform(1, 0, 99);
    /// let mut store = CoveringStore::new(SubsumptionChecker::default());
    /// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    /// let wide = Subscription::builder(&schema).range("x0", 0, 50).build()?;
    /// let narrow = Subscription::builder(&schema).range("x0", 10, 20).build()?;
    /// store.insert(SubscriptionId(1), wide, &mut rng);
    /// store.insert(SubscriptionId(2), narrow, &mut rng);
    ///
    /// let entries: Vec<_> = store.iter_entries().collect();
    /// assert_eq!(entries.len(), 2);
    /// assert!(entries[0].2.is_none(), "wide entry is active (no parents)");
    /// assert!(entries[1].2.is_some(), "narrow entry is covered");
    /// # Ok::<(), psc_model::ModelError>(())
    /// ```
    pub fn iter_entries(
        &self,
    ) -> impl Iterator<Item = (SubscriptionId, &Subscription, Option<&CoverParents>)> + '_ {
        self.active_ids
            .iter()
            .zip(self.active_subs.iter())
            .map(|(&id, sub)| (id, sub, None))
            .chain(
                self.covered
                    .iter()
                    .map(|e| (e.id, &e.sub, Some(&e.parents))),
            )
    }

    /// Rebuilds a store from entries produced by
    /// [`iter_entries`](CoveringStore::iter_entries), preserving column
    /// order and parent links exactly and **without** consulting the
    /// subsumption checker (match statistics start at zero).
    ///
    /// Entries with `None` parents become the active columns in input
    /// order; the rest rebuild the covered pool. The image is validated:
    /// ids must be unique and every pairwise parent must be active.
    ///
    /// # Example
    /// ```
    /// use psc_matcher::CoveringStore;
    /// use psc_core::SubsumptionChecker;
    /// use psc_model::{Publication, Schema, Subscription, SubscriptionId};
    /// use rand::SeedableRng;
    ///
    /// let schema = Schema::uniform(1, 0, 99);
    /// let mut store = CoveringStore::new(SubsumptionChecker::default());
    /// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    /// let wide = Subscription::builder(&schema).range("x0", 0, 50).build()?;
    /// let narrow = Subscription::builder(&schema).range("x0", 10, 20).build()?;
    /// store.insert(SubscriptionId(1), wide, &mut rng);
    /// store.insert(SubscriptionId(2), narrow, &mut rng);
    ///
    /// // Export the exact image and rebuild — no subsumption checks run.
    /// let image: Vec<_> = store
    ///     .iter_entries()
    ///     .map(|(id, sub, parents)| (id, sub.clone(), parents.cloned()))
    ///     .collect();
    /// let mut rebuilt = CoveringStore::from_entries(SubsumptionChecker::default(), image)?;
    /// assert_eq!(rebuilt.active_len(), 1);
    /// assert_eq!(rebuilt.covered_len(), 1);
    ///
    /// let p = Publication::builder(&schema).set("x0", 15).build().unwrap();
    /// assert_eq!(
    ///     rebuilt.match_publication(&p),
    ///     vec![SubscriptionId(1), SubscriptionId(2)],
    /// );
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn from_entries(
        checker: SubsumptionChecker,
        entries: Vec<(SubscriptionId, Subscription, Option<CoverParents>)>,
    ) -> Result<Self, RestoreError> {
        let mut store = CoveringStore::new(checker);
        let mut seen = HashSet::new();
        // Hash set of active ids so parent validation stays O(covered)
        // instead of O(actives × covered) — restore is a boot-time path
        // that must scale to millions of subscriptions per shard.
        let mut active: HashSet<SubscriptionId> = HashSet::new();
        for (id, sub, parents) in entries {
            if !seen.insert(id) {
                return Err(RestoreError::DuplicateId(id));
            }
            match parents {
                None => {
                    active.insert(id);
                    store.active_ids.push(id);
                    store.active_subs.push(sub);
                }
                Some(parents) => store.covered.push(StoredEntry { id, sub, parents }),
            }
        }
        for e in &store.covered {
            if let CoverParents::Single(parent) = &e.parents {
                if !active.contains(parent) {
                    return Err(RestoreError::UnknownParent {
                        child: e.id,
                        parent: *parent,
                    });
                }
            }
        }
        Ok(store)
    }

    /// Dumps all stored subscriptions as `(id, subscription, is_active)` —
    /// the reference view differential tests compare against.
    pub fn snapshot(&self) -> HashMap<SubscriptionId, (Subscription, bool)> {
        let mut out = HashMap::new();
        for (&id, sub) in self.active_ids.iter().zip(self.active_subs.iter()) {
            out.insert(id, (sub.clone(), true));
        }
        for e in &self.covered {
            out.insert(e.id, (e.sub.clone(), false));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psc_model::Schema;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schema() -> Schema {
        Schema::uniform(2, 0, 99)
    }

    fn sub(schema: &Schema, x0: (i64, i64), x1: (i64, i64)) -> Subscription {
        Subscription::builder(schema)
            .range("x0", x0.0, x0.1)
            .range("x1", x1.0, x1.1)
            .build()
            .unwrap()
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    fn store() -> CoveringStore {
        CoveringStore::new(SubsumptionChecker::default())
    }

    #[test]
    fn pairwise_covered_entry_is_parent_gated() {
        let schema = schema();
        let mut st = store();
        let mut rng = rng();
        st.insert(SubscriptionId(1), sub(&schema, (0, 50), (0, 50)), &mut rng);
        st.insert(
            SubscriptionId(2),
            sub(&schema, (60, 90), (60, 90)),
            &mut rng,
        );
        let out = st.insert(
            SubscriptionId(3),
            sub(&schema, (10, 20), (10, 20)),
            &mut rng,
        );
        assert_eq!(
            out,
            InsertOutcome::Covered {
                parents: CoverParents::Single(SubscriptionId(1)),
                error_bound: 0.0
            }
        );
        // Publication inside sub 2 but not sub 1: the covered entry's gate
        // stays closed.
        let p = Publication::builder(&schema)
            .set("x0", 70)
            .set("x1", 70)
            .build()
            .unwrap();
        assert_eq!(st.match_publication(&p), vec![SubscriptionId(2)]);
        assert_eq!(st.stats().covered_skipped, 1);
        assert_eq!(st.stats().covered_checked, 0);
    }

    #[test]
    fn group_covered_entry_matches() {
        let schema = schema();
        let mut st = store();
        let mut rng = rng();
        // Two halves cover [0,99] on x0 for the x1 band [0,50].
        st.insert(SubscriptionId(1), sub(&schema, (0, 60), (0, 50)), &mut rng);
        st.insert(SubscriptionId(2), sub(&schema, (50, 99), (0, 50)), &mut rng);
        let out = st.insert(
            SubscriptionId(3),
            sub(&schema, (20, 80), (10, 40)),
            &mut rng,
        );
        match out {
            InsertOutcome::Covered {
                parents: CoverParents::Group,
                ..
            } => {}
            other => panic!("expected group cover, got {other:?}"),
        }
        let p = Publication::builder(&schema)
            .set("x0", 55)
            .set("x1", 20)
            .build()
            .unwrap();
        let matched = st.match_publication(&p);
        assert_eq!(
            matched,
            vec![SubscriptionId(1), SubscriptionId(2), SubscriptionId(3)]
        );
    }

    #[test]
    fn phase2_fully_skipped_without_active_match() {
        let schema = schema();
        let mut st = store();
        let mut rng = rng();
        st.insert(SubscriptionId(1), sub(&schema, (0, 50), (0, 50)), &mut rng);
        st.insert(
            SubscriptionId(2),
            sub(&schema, (10, 20), (10, 20)),
            &mut rng,
        );
        let p = Publication::builder(&schema)
            .set("x0", 90)
            .set("x1", 90)
            .build()
            .unwrap();
        assert!(st.match_publication(&p).is_empty());
        assert_eq!(st.stats().phase2_skipped, 1);
        assert_eq!(st.stats().covered_checked, 0);
    }

    #[test]
    fn new_subscription_demotes_covered_actives() {
        let schema = schema();
        let mut st = store();
        let mut rng = rng();
        st.insert(
            SubscriptionId(1),
            sub(&schema, (10, 20), (10, 20)),
            &mut rng,
        );
        st.insert(
            SubscriptionId(2),
            sub(&schema, (60, 70), (60, 70)),
            &mut rng,
        );
        let out = st.insert(SubscriptionId(3), sub(&schema, (0, 30), (0, 30)), &mut rng);
        assert_eq!(
            out,
            InsertOutcome::Active {
                demoted: vec![SubscriptionId(1)]
            }
        );
        assert_eq!(st.active_len(), 2);
        assert_eq!(st.covered_len(), 1);
        // The demoted subscription still matches.
        let p = Publication::builder(&schema)
            .set("x0", 15)
            .set("x1", 15)
            .build()
            .unwrap();
        let matched = st.match_publication(&p);
        assert!(matched.contains(&SubscriptionId(1)));
        assert!(matched.contains(&SubscriptionId(3)));
    }

    #[test]
    fn removing_active_promotes_uncovered_children() {
        let schema = schema();
        let mut st = store();
        let mut rng = rng();
        st.insert(SubscriptionId(1), sub(&schema, (0, 50), (0, 50)), &mut rng);
        st.insert(
            SubscriptionId(2),
            sub(&schema, (10, 20), (10, 20)),
            &mut rng,
        );
        assert_eq!(st.active_len(), 1);
        assert!(st.remove(SubscriptionId(1), &mut rng));
        // Child promoted: it is now the only subscription, and active.
        assert_eq!(st.active_len(), 1);
        assert_eq!(st.covered_len(), 0);
        let p = Publication::builder(&schema)
            .set("x0", 15)
            .set("x1", 15)
            .build()
            .unwrap();
        assert_eq!(st.match_publication(&p), vec![SubscriptionId(2)]);
    }

    #[test]
    fn removing_active_reparents_still_covered_children() {
        let schema = schema();
        let mut st = store();
        let mut rng = rng();
        st.insert(SubscriptionId(1), sub(&schema, (0, 50), (0, 50)), &mut rng);
        st.insert(SubscriptionId(2), sub(&schema, (0, 40), (0, 40)), &mut rng); // ⊑ 1
        st.insert(SubscriptionId(3), sub(&schema, (5, 10), (5, 10)), &mut rng); // ⊑ 1 (and ⊑ 2)
        assert_eq!(st.active_len(), 1);
        assert!(st.remove(SubscriptionId(1), &mut rng));
        // 2 promotes to active; 3 re-parks under 2.
        assert_eq!(st.active_len(), 1);
        assert_eq!(st.covered_len(), 1);
        let snap = st.snapshot();
        assert!(snap[&SubscriptionId(2)].1, "2 should be active");
        assert!(!snap[&SubscriptionId(3)].1, "3 should be covered");
    }

    #[test]
    fn remove_covered_entry_directly() {
        let schema = schema();
        let mut st = store();
        let mut rng = rng();
        st.insert(SubscriptionId(1), sub(&schema, (0, 50), (0, 50)), &mut rng);
        st.insert(
            SubscriptionId(2),
            sub(&schema, (10, 20), (10, 20)),
            &mut rng,
        );
        assert!(st.remove(SubscriptionId(2), &mut rng));
        assert_eq!(st.len(), 1);
        assert!(!st.remove(SubscriptionId(2), &mut rng));
    }

    #[test]
    #[should_panic(expected = "already stored")]
    fn duplicate_ids_panic() {
        let schema = schema();
        let mut st = store();
        let mut rng = rng();
        st.insert(SubscriptionId(1), sub(&schema, (0, 50), (0, 50)), &mut rng);
        st.insert(SubscriptionId(1), sub(&schema, (0, 10), (0, 10)), &mut rng);
    }

    #[test]
    fn admit_batch_parks_narrow_under_wide_regardless_of_batch_order() {
        let schema = schema();
        let mut st = store();
        let mut rng = rng();
        // Narrow-first in the batch; widest-first admission must still park
        // both narrow subscriptions under the wide one.
        let outcomes = st.admit_batch(
            vec![
                (SubscriptionId(1), sub(&schema, (10, 20), (10, 20))),
                (SubscriptionId(2), sub(&schema, (30, 35), (30, 35))),
                (SubscriptionId(3), sub(&schema, (0, 50), (0, 50))),
            ],
            &mut rng,
        );
        assert_eq!(outcomes.len(), 3);
        assert_eq!(outcomes[0].0, SubscriptionId(1));
        assert!(!outcomes[0].1.is_active());
        assert!(!outcomes[1].1.is_active());
        assert!(outcomes[2].1.is_active());
        assert_eq!(st.active_len(), 1);
        assert_eq!(st.covered_len(), 2);
        // No demotions happened: the wide subscription went in first.
        assert!(matches!(&outcomes[2].1, InsertOutcome::Active { demoted } if demoted.is_empty()));
    }

    #[test]
    fn admit_batch_matches_sequential_store_contents() {
        let schema = schema();
        let subs = [
            sub(&schema, (0, 60), (0, 60)),
            sub(&schema, (50, 99), (0, 99)),
            sub(&schema, (10, 20), (10, 20)),
            sub(&schema, (55, 70), (5, 50)),
            sub(&schema, (0, 99), (0, 99)),
        ];
        let mut batched = store();
        batched.admit_batch(
            subs.iter()
                .enumerate()
                .map(|(i, s)| (SubscriptionId(i as u64), s.clone()))
                .collect(),
            &mut rng(),
        );
        let mut sequential = store();
        let mut rng2 = rng();
        for (i, s) in subs.iter().enumerate() {
            sequential.insert(SubscriptionId(i as u64), s.clone(), &mut rng2);
        }
        // Same membership; matching results agree on a probe grid.
        assert_eq!(batched.len(), sequential.len());
        for x in (0..100).step_by(9) {
            for y in (0..100).step_by(13) {
                let p = Publication::builder(&schema)
                    .set("x0", x)
                    .set("x1", y)
                    .build()
                    .unwrap();
                let mut a = batched.match_publication(&p);
                let mut b = sequential.match_publication(&p);
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "mismatch at ({x}, {y})");
            }
        }
    }

    #[test]
    fn stats_snapshot_reflects_occupancy_and_counters() {
        let schema = schema();
        let mut st = store();
        let mut rng = rng();
        st.insert(SubscriptionId(1), sub(&schema, (0, 50), (0, 50)), &mut rng);
        st.insert(
            SubscriptionId(2),
            sub(&schema, (10, 20), (10, 20)),
            &mut rng,
        );
        let p = Publication::builder(&schema)
            .set("x0", 15)
            .set("x1", 15)
            .build()
            .unwrap();
        st.match_publication(&p);
        let snap = st.stats_snapshot();
        assert_eq!(snap.active, 1);
        assert_eq!(snap.covered, 1);
        assert_eq!(snap.match_stats, st.stats());
        assert!(snap.match_stats.active_checked > 0);
    }

    #[test]
    fn iter_entries_round_trips_through_from_entries() {
        let schema = schema();
        let mut st = store();
        let mut rng = rng();
        // Build a store with actives, a pairwise-covered entry, a
        // group-covered entry, and a demotion, then a removal — exercising
        // every structural transition before the export.
        st.insert(SubscriptionId(1), sub(&schema, (0, 60), (0, 50)), &mut rng);
        st.insert(SubscriptionId(2), sub(&schema, (50, 99), (0, 50)), &mut rng);
        st.insert(
            SubscriptionId(3),
            sub(&schema, (20, 80), (10, 40)),
            &mut rng,
        ); // group-covered by 1 ∪ 2
        st.insert(SubscriptionId(4), sub(&schema, (5, 10), (5, 10)), &mut rng); // pairwise under 1
        st.insert(SubscriptionId(5), sub(&schema, (0, 99), (0, 99)), &mut rng); // demotes 1 and 2
        st.remove(SubscriptionId(4), &mut rng);

        let image: Vec<_> = st
            .iter_entries()
            .map(|(id, sub, parents)| (id, sub.clone(), parents.cloned()))
            .collect();
        let rebuilt =
            CoveringStore::from_entries(SubsumptionChecker::default(), image.clone()).unwrap();

        // Exact structural equality: same entries, same order, same links.
        let rebuilt_image: Vec<_> = rebuilt
            .iter_entries()
            .map(|(id, sub, parents)| (id, sub.clone(), parents.cloned()))
            .collect();
        assert_eq!(rebuilt_image, image);
        assert_eq!(rebuilt.active_len(), st.active_len());
        assert_eq!(rebuilt.covered_len(), st.covered_len());

        // Matching (and its gating behavior) is identical too.
        let mut original = st.clone();
        let mut rebuilt = rebuilt;
        for x in (0..100).step_by(11) {
            for y in (0..100).step_by(17) {
                let p = Publication::builder(&schema)
                    .set("x0", x)
                    .set("x1", y)
                    .build()
                    .unwrap();
                assert_eq!(
                    rebuilt.match_publication(&p),
                    original.match_publication(&p),
                    "mismatch at ({x}, {y})"
                );
            }
        }
        // Same probes and skips: parent gating survived the round-trip.
        assert_eq!(rebuilt.stats(), original.stats());
    }

    #[test]
    fn from_entries_rejects_duplicate_ids() {
        let schema = schema();
        let s = sub(&schema, (0, 9), (0, 9));
        let err = CoveringStore::from_entries(
            SubsumptionChecker::default(),
            vec![
                (SubscriptionId(1), s.clone(), None),
                (SubscriptionId(1), s, None),
            ],
        )
        .unwrap_err();
        assert_eq!(err, RestoreError::DuplicateId(SubscriptionId(1)));
    }

    #[test]
    fn from_entries_rejects_dangling_parent() {
        let schema = schema();
        let s = sub(&schema, (0, 9), (0, 9));
        let err = CoveringStore::from_entries(
            SubsumptionChecker::default(),
            vec![(
                SubscriptionId(2),
                s,
                Some(CoverParents::Single(SubscriptionId(7))),
            )],
        )
        .unwrap_err();
        assert_eq!(
            err,
            RestoreError::UnknownParent {
                child: SubscriptionId(2),
                parent: SubscriptionId(7),
            }
        );
    }

    #[test]
    fn matches_agree_with_naive_matcher() {
        use crate::NaiveMatcher;
        let schema = schema();
        let mut st = store();
        let mut naive = NaiveMatcher::new();
        let mut rng = rng();
        let subs = [
            sub(&schema, (0, 60), (0, 60)),
            sub(&schema, (50, 99), (0, 99)),
            sub(&schema, (10, 20), (10, 20)),
            sub(&schema, (55, 70), (5, 50)),
            sub(&schema, (0, 99), (0, 99)),
            sub(&schema, (30, 40), (30, 90)),
        ];
        for (i, s) in subs.iter().enumerate() {
            st.insert(SubscriptionId(i as u64), s.clone(), &mut rng);
            naive.insert(SubscriptionId(i as u64), s.clone());
        }
        for x in (0..100).step_by(7) {
            for y in (0..100).step_by(11) {
                let p = Publication::builder(&schema)
                    .set("x0", x)
                    .set("x1", y)
                    .build()
                    .unwrap();
                let mut a = st.match_publication(&p);
                let mut b = naive.matches(&p);
                a.sort_unstable_by_key(|id| id.0);
                b.sort_unstable_by_key(|id| id.0);
                assert_eq!(a, b, "mismatch at ({x}, {y})");
            }
        }
    }
}
