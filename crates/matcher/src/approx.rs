//! Approximate matching for imprecise publications.
//!
//! Section 1 of the paper: *"We consider publications also as convex
//! polyhedra, to support environments with imprecise data sources, as it is
//! advocated in recent publish/subscribe models with approximate
//! matching."* An imprecise reading (e.g. a sensor value ± its error bound)
//! is a small box rather than a point; matching it against a subscription
//! yields three-valued answers:
//!
//! - [`ApproxMatch::Certain`] — every point of the box matches (box ⊑ s);
//! - [`ApproxMatch::Possible`] — some points match (box ∩ s ≠ ∅);
//! - [`ApproxMatch::None`] — no point matches.
//!
//! Against a *set* of subscriptions the certain case generalizes to the
//! paper's group-subsumption question — "is the box covered by the union?" —
//! which is decided by the very same probabilistic machinery
//! ([`BoxMatcher::match_set`] delegates to
//! [`SubsumptionChecker`] under the hood).

use psc_core::SubsumptionChecker;
use psc_model::{Publication, Subscription};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Three-valued match of an imprecise publication against subscriptions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ApproxMatch {
    /// Every possible true value matches.
    Certain,
    /// Some possible true values match.
    Possible,
    /// No possible true value matches.
    None,
}

/// Matcher for box-shaped (imprecise) publications.
#[derive(Debug, Clone, Default)]
pub struct BoxMatcher {
    checker: SubsumptionChecker,
}

impl BoxMatcher {
    /// Creates a matcher whose group-certainty decisions use `checker`.
    pub fn new(checker: SubsumptionChecker) -> Self {
        BoxMatcher { checker }
    }

    /// Matches a publication box against a single subscription —
    /// deterministic rectangle geometry.
    pub fn match_one(&self, publication_box: &Subscription, s: &Subscription) -> ApproxMatch {
        if s.covers(publication_box) {
            ApproxMatch::Certain
        } else if s.intersects(publication_box) {
            ApproxMatch::Possible
        } else {
            ApproxMatch::None
        }
    }

    /// Matches a publication box against a subscription *set*:
    ///
    /// - `Certain` when the box is covered by the **union** of the set — the
    ///   paper's general subsumption question, answered probabilistically
    ///   (certainty here carries the checker's error bound);
    /// - `Possible` when at least one subscription intersects the box;
    /// - `None` otherwise.
    pub fn match_set<R: Rng + ?Sized>(
        &self,
        publication_box: &Subscription,
        set: &[Subscription],
        rng: &mut R,
    ) -> ApproxMatch {
        if !set.iter().any(|s| s.intersects(publication_box)) {
            return ApproxMatch::None;
        }
        if self.checker.check(publication_box, set, rng).is_covered() {
            ApproxMatch::Certain
        } else {
            ApproxMatch::Possible
        }
    }

    /// Convenience for a point reading with a per-attribute error `radius`:
    /// lifts the point to a box first.
    pub fn match_imprecise<R: Rng + ?Sized>(
        &self,
        p: &Publication,
        radius: i64,
        set: &[Subscription],
        rng: &mut R,
    ) -> ApproxMatch {
        self.match_set(&p.to_box(radius), set, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psc_model::Schema;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schema() -> Schema {
        Schema::uniform(2, 0, 99)
    }

    fn sub(schema: &Schema, x0: (i64, i64), x1: (i64, i64)) -> Subscription {
        Subscription::builder(schema)
            .range("x0", x0.0, x0.1)
            .range("x1", x1.0, x1.1)
            .build()
            .unwrap()
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(314)
    }

    #[test]
    fn single_subscription_three_values() {
        let schema = schema();
        let m = BoxMatcher::default();
        let s = sub(&schema, (10, 50), (10, 50));
        let inside = sub(&schema, (20, 30), (20, 30));
        let straddle = sub(&schema, (45, 60), (20, 30));
        let outside = sub(&schema, (60, 70), (60, 70));
        assert_eq!(m.match_one(&inside, &s), ApproxMatch::Certain);
        assert_eq!(m.match_one(&straddle, &s), ApproxMatch::Possible);
        assert_eq!(m.match_one(&outside, &s), ApproxMatch::None);
    }

    #[test]
    fn group_certainty_uses_union_cover() {
        // Box straddles two subscriptions that jointly cover it: certain,
        // even though neither alone suffices.
        let schema = schema();
        let m = BoxMatcher::new(
            SubsumptionChecker::builder()
                .error_probability(1e-10)
                .build(),
        );
        let left = sub(&schema, (0, 30), (0, 99));
        let right = sub(&schema, (25, 60), (0, 99));
        let boxed = sub(&schema, (10, 50), (40, 45));
        let mut rng = rng();
        assert_eq!(m.match_one(&boxed, &left), ApproxMatch::Possible);
        assert_eq!(m.match_one(&boxed, &right), ApproxMatch::Possible);
        assert_eq!(
            m.match_set(&boxed, &[left, right], &mut rng),
            ApproxMatch::Certain
        );
    }

    #[test]
    fn group_possible_when_gap_remains() {
        let schema = schema();
        let m = BoxMatcher::new(
            SubsumptionChecker::builder()
                .error_probability(1e-10)
                .build(),
        );
        let left = sub(&schema, (0, 20), (0, 99));
        let right = sub(&schema, (30, 60), (0, 99));
        let boxed = sub(&schema, (10, 50), (40, 45)); // x0 gap [21, 29] uncovered
        let mut rng = rng();
        assert_eq!(
            m.match_set(&boxed, &[left, right], &mut rng),
            ApproxMatch::Possible
        );
    }

    #[test]
    fn none_when_disjoint_from_everything() {
        let schema = schema();
        let m = BoxMatcher::default();
        let s1 = sub(&schema, (0, 10), (0, 10));
        let boxed = sub(&schema, (50, 60), (50, 60));
        let mut rng = rng();
        assert_eq!(m.match_set(&boxed, &[s1], &mut rng), ApproxMatch::None);
        assert_eq!(m.match_set(&boxed, &[], &mut rng), ApproxMatch::None);
    }

    #[test]
    fn imprecise_point_reading() {
        let schema = schema();
        let m = BoxMatcher::new(
            SubsumptionChecker::builder()
                .error_probability(1e-10)
                .build(),
        );
        let s = sub(&schema, (10, 50), (10, 50));
        let p = Publication::builder(&schema)
            .set("x0", 49)
            .set("x1", 30)
            .build()
            .unwrap();
        let mut rng = rng();
        // Exact reading matches; with radius 5 the box pokes out of s.
        assert_eq!(
            m.match_imprecise(&p, 0, std::slice::from_ref(&s), &mut rng),
            ApproxMatch::Certain
        );
        assert_eq!(
            m.match_imprecise(&p, 5, &[s], &mut rng),
            ApproxMatch::Possible
        );
    }
}
