//! An index accelerating the *covering* path: pairwise-cover candidates and
//! the intersection prefilter over a large subscription set.
//!
//! The subsumption pipeline scans the whole set per query (`O(m·k)` for the
//! conflict table is unavoidable in the worst case). But the two cheapest
//! and most frequent questions brokers ask have sub-linear candidate
//! structure:
//!
//! - *pairwise cover* (`∃i: si ⊇ s`): any cover must, on a chosen pivot
//!   attribute, have `lo ≤ s.lo` and `hi ≥ s.hi` — so indexing subscriptions
//!   by their pivot lower bound lets the scan stop early and skip
//!   non-candidates;
//! - *intersection* (`si ∩ s ≠ ∅`): the complement (disjoint on the pivot)
//!   is discovered the same way.
//!
//! The index picks the attribute with the most discriminating bounds as the
//! pivot (largest spread of lower bounds). This is a pragma­tic engineering
//! structure, not a paper artifact; differential tests pin it to the naive
//! scans.

use psc_model::{AttrId, Subscription, SubscriptionId};

/// Per-attribute sorted views over a subscription set, optimized for cover
/// candidate generation.
///
/// Rebuild-on-mutation (like [`crate::CountingIndex`]): brokers mutate
/// rarely relative to queries.
///
/// # Example
/// ```
/// use psc_matcher::cover_index::CoverIndex;
/// use psc_model::{Schema, Subscription, SubscriptionId};
/// let schema = Schema::uniform(2, 0, 99);
/// let wide = Subscription::builder(&schema).range("x0", 0, 80).build()?;
/// let narrow = Subscription::builder(&schema).range("x0", 10, 20).build()?;
/// let mut idx = CoverIndex::new(&schema);
/// idx.insert(SubscriptionId(1), wide);
/// assert_eq!(idx.find_cover(&narrow), Some(SubscriptionId(1)));
/// # Ok::<(), psc_model::ModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CoverIndex {
    arity: usize,
    subs: Vec<(SubscriptionId, Subscription)>,
    /// Entry order sorted ascending by pivot-attribute lower bound.
    by_pivot_lo: Vec<usize>,
    pivot: AttrId,
    dirty: bool,
}

impl CoverIndex {
    /// Creates an empty index for subscriptions of the given schema.
    pub fn new(schema: &psc_model::Schema) -> Self {
        CoverIndex {
            arity: schema.len(),
            subs: Vec::new(),
            by_pivot_lo: Vec::new(),
            pivot: AttrId(0),
            dirty: false,
        }
    }

    /// Number of stored subscriptions.
    pub fn len(&self) -> usize {
        self.subs.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.subs.is_empty()
    }

    /// Adds a subscription.
    ///
    /// # Panics
    /// Panics on arity mismatch.
    pub fn insert(&mut self, id: SubscriptionId, sub: Subscription) {
        assert_eq!(sub.arity(), self.arity, "subscription arity mismatch");
        self.subs.push((id, sub));
        self.dirty = true;
    }

    /// Removes all subscriptions with `id`; returns how many were removed.
    pub fn remove(&mut self, id: SubscriptionId) -> usize {
        let before = self.subs.len();
        self.subs.retain(|(i, _)| *i != id);
        let removed = before - self.subs.len();
        if removed > 0 {
            self.dirty = true;
        }
        removed
    }

    fn rebuild(&mut self) {
        // Pivot = attribute with the largest number of distinct lower
        // bounds (most discriminating for the lo <= s.lo cut).
        let mut best = (0usize, 0usize);
        for j in 0..self.arity {
            let mut los: Vec<i64> = self.subs.iter().map(|(_, s)| s.ranges()[j].lo()).collect();
            los.sort_unstable();
            los.dedup();
            if los.len() > best.1 {
                best = (j, los.len());
            }
        }
        self.pivot = AttrId(best.0);
        self.by_pivot_lo = (0..self.subs.len()).collect();
        self.by_pivot_lo
            .sort_by_key(|&i| self.subs[i].1.ranges()[self.pivot.0].lo());
        self.dirty = false;
    }

    fn ensure(&mut self) {
        if self.dirty || (self.by_pivot_lo.len() != self.subs.len()) {
            self.rebuild();
        }
    }

    /// First stored subscription that covers `s` pairwise, if any.
    ///
    /// Only entries with pivot `lo ≤ s.lo(pivot)` are candidates; the sorted
    /// order makes the cut a prefix.
    pub fn find_cover(&mut self, s: &Subscription) -> Option<SubscriptionId> {
        self.ensure();
        let s_lo = s.ranges()[self.pivot.0].lo();
        for &i in &self.by_pivot_lo {
            let (id, candidate) = &self.subs[i];
            if candidate.ranges()[self.pivot.0].lo() > s_lo {
                break; // sorted: no later entry can cover on the pivot
            }
            if candidate.covers(s) {
                return Some(*id);
            }
        }
        None
    }

    /// All stored subscriptions intersecting `s`, in insertion order.
    pub fn intersecting(&mut self, s: &Subscription) -> Vec<SubscriptionId> {
        self.ensure();
        // The pivot cut here is weaker (intersection only needs
        // lo <= s.hi), but still prunes everything beyond s's pivot end.
        let s_hi = s.ranges()[self.pivot.0].hi();
        let mut hits: Vec<usize> = Vec::new();
        for &i in &self.by_pivot_lo {
            let (_, candidate) = &self.subs[i];
            if candidate.ranges()[self.pivot.0].lo() > s_hi {
                break;
            }
            if candidate.intersects(s) {
                hits.push(i);
            }
        }
        hits.sort_unstable();
        hits.into_iter().map(|i| self.subs[i].0).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use psc_model::Schema;

    fn schema() -> Schema {
        Schema::uniform(2, 0, 99)
    }

    fn sub(schema: &Schema, x0: (i64, i64), x1: (i64, i64)) -> Subscription {
        Subscription::builder(schema)
            .range("x0", x0.0, x0.1)
            .range("x1", x1.0, x1.1)
            .build()
            .unwrap()
    }

    #[test]
    fn finds_cover_and_respects_removal() {
        let schema = schema();
        let mut idx = CoverIndex::new(&schema);
        idx.insert(SubscriptionId(1), sub(&schema, (0, 80), (0, 80)));
        idx.insert(SubscriptionId(2), sub(&schema, (5, 50), (5, 50)));
        let probe = sub(&schema, (10, 40), (10, 40));
        assert_eq!(idx.find_cover(&probe), Some(SubscriptionId(1)));
        idx.remove(SubscriptionId(1));
        assert_eq!(idx.find_cover(&probe), Some(SubscriptionId(2)));
        idx.remove(SubscriptionId(2));
        assert_eq!(idx.find_cover(&probe), None);
        assert!(idx.is_empty());
    }

    #[test]
    fn intersection_prefilter_matches_naive() {
        let schema = schema();
        let mut idx = CoverIndex::new(&schema);
        let subs = [
            sub(&schema, (0, 20), (0, 99)),
            sub(&schema, (30, 60), (0, 99)),
            sub(&schema, (70, 99), (0, 10)),
        ];
        for (i, s) in subs.iter().enumerate() {
            idx.insert(SubscriptionId(i as u64), s.clone());
        }
        let probe = sub(&schema, (15, 40), (20, 30));
        let got = idx.intersecting(&probe);
        assert_eq!(got, vec![SubscriptionId(0), SubscriptionId(1)]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_index_equals_naive(
            subs in proptest::collection::vec(
                (0i64..80, 0i64..40, 0i64..80, 0i64..40), 0..30),
            probe in (0i64..80, 0i64..40, 0i64..80, 0i64..40),
        ) {
            let schema = schema();
            let build = |(a, aw, b, bw): (i64, i64, i64, i64)| {
                sub(&schema, (a, (a + aw).min(99)), (b, (b + bw).min(99)))
            };
            let mut idx = CoverIndex::new(&schema);
            let set: Vec<Subscription> = subs.iter().map(|&t| build(t)).collect();
            for (i, s) in set.iter().enumerate() {
                idx.insert(SubscriptionId(i as u64), s.clone());
            }
            let probe = build(probe);

            // find_cover agrees with the naive existence check (any cover,
            // not necessarily the same one).
            let naive_cover = set.iter().any(|s| s.covers(&probe));
            prop_assert_eq!(idx.find_cover(&probe).is_some(), naive_cover);

            // intersecting() agrees exactly.
            let naive_hits: Vec<SubscriptionId> = set
                .iter()
                .enumerate()
                .filter_map(|(i, s)| {
                    s.intersects(&probe).then_some(SubscriptionId(i as u64))
                })
                .collect();
            prop_assert_eq!(idx.intersecting(&probe), naive_hits);
        }
    }
}
