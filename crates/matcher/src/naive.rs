//! Flat linear-scan matcher: the correctness baseline.

use psc_model::{Publication, Subscription, SubscriptionId};

/// Matches publications by scanning every subscription.
///
/// `O(m·N)` per publication. Exists to (a) serve tiny installations where an
/// index costs more than it saves and (b) pin down the semantics the other
/// engines must reproduce.
///
/// # Example
/// ```
/// use psc_matcher::NaiveMatcher;
/// use psc_model::{Schema, Subscription, Publication, SubscriptionId};
///
/// let schema = Schema::uniform(2, 0, 99);
/// let mut m = NaiveMatcher::new();
/// m.insert(SubscriptionId(1),
///     Subscription::builder(&schema).range("x0", 10, 20).build()?);
/// m.insert(SubscriptionId(2),
///     Subscription::builder(&schema).range("x1", 50, 60).build()?);
/// let p = Publication::builder(&schema).set("x0", 15).set("x1", 55).build()?;
/// assert_eq!(m.matches(&p), vec![SubscriptionId(1), SubscriptionId(2)]);
/// # Ok::<(), psc_model::ModelError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct NaiveMatcher {
    subs: Vec<(SubscriptionId, Subscription)>,
}

impl NaiveMatcher {
    /// Creates an empty matcher.
    pub fn new() -> Self {
        NaiveMatcher { subs: Vec::new() }
    }

    /// Number of stored subscriptions.
    pub fn len(&self) -> usize {
        self.subs.len()
    }

    /// Whether the matcher is empty.
    pub fn is_empty(&self) -> bool {
        self.subs.is_empty()
    }

    /// Adds a subscription under `id`. Duplicate ids are allowed and each
    /// copy matches independently (callers that care deduplicate upstream).
    pub fn insert(&mut self, id: SubscriptionId, sub: Subscription) {
        self.subs.push((id, sub));
    }

    /// Removes all subscriptions with `id`; returns how many were removed.
    pub fn remove(&mut self, id: SubscriptionId) -> usize {
        let before = self.subs.len();
        self.subs.retain(|(i, _)| *i != id);
        before - self.subs.len()
    }

    /// Ids of all subscriptions matching `p`, in insertion order.
    pub fn matches(&self, p: &Publication) -> Vec<SubscriptionId> {
        self.subs
            .iter()
            .filter_map(|(id, s)| s.matches(p).then_some(*id))
            .collect()
    }

    /// Iterates over stored `(id, subscription)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SubscriptionId, &Subscription)> {
        self.subs.iter().map(|(id, s)| (*id, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psc_model::Schema;

    fn schema() -> Schema {
        Schema::uniform(2, 0, 99)
    }

    fn sub(schema: &Schema, x0: (i64, i64), x1: (i64, i64)) -> Subscription {
        Subscription::builder(schema)
            .range("x0", x0.0, x0.1)
            .range("x1", x1.0, x1.1)
            .build()
            .unwrap()
    }

    #[test]
    fn matches_in_insertion_order() {
        let schema = schema();
        let mut m = NaiveMatcher::new();
        m.insert(SubscriptionId(3), sub(&schema, (0, 50), (0, 50)));
        m.insert(SubscriptionId(1), sub(&schema, (10, 20), (10, 20)));
        m.insert(SubscriptionId(2), sub(&schema, (60, 90), (60, 90)));
        let p = Publication::builder(&schema)
            .set("x0", 15)
            .set("x1", 15)
            .build()
            .unwrap();
        assert_eq!(m.matches(&p), vec![SubscriptionId(3), SubscriptionId(1)]);
    }

    #[test]
    fn remove_drops_all_copies() {
        let schema = schema();
        let mut m = NaiveMatcher::new();
        m.insert(SubscriptionId(1), sub(&schema, (0, 99), (0, 99)));
        m.insert(SubscriptionId(1), sub(&schema, (0, 10), (0, 10)));
        assert_eq!(m.remove(SubscriptionId(1)), 2);
        assert!(m.is_empty());
    }

    #[test]
    fn empty_matcher_matches_nothing() {
        let schema = schema();
        let m = NaiveMatcher::new();
        let p = Publication::builder(&schema)
            .set("x0", 1)
            .set("x1", 1)
            .build()
            .unwrap();
        assert!(m.matches(&p).is_empty());
    }
}
