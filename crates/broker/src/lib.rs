//! # psc-broker
//!
//! A distributed content-based publish/subscribe broker-network simulator,
//! reproducing the routing substrate of Sections 2 and 5 of the Middleware
//! 2006 subsumption paper:
//!
//! - [`Topology`] — undirected broker graphs, including the nine-broker
//!   example of the paper's Figure 1 and chains for Proposition 5.
//! - [`Network`] — synchronous simulation of **reverse path forwarding**:
//!   subscriptions flood away from the subscriber and install per-link
//!   routing state; publications follow the reverse links of matching
//!   subscriptions.
//! - [`CoveringPolicy`] — what a broker checks before forwarding a
//!   subscription over a link: nothing ([`CoveringPolicy::Flooding`]), a
//!   single covering subscription ([`CoveringPolicy::Pairwise`]), or the
//!   paper's probabilistic group cover ([`CoveringPolicy::Group`]).
//! - [`propagation`] — Proposition 5 / Equation 2: the probability that a
//!   matching publication is still found after a subscription was
//!   erroneously declared covered, both in closed form and by Monte-Carlo
//!   simulation.
//!
//! Covering never loses publications with deterministic policies (covered
//! subscriptions are implied by what was forwarded); with the probabilistic
//! policy, losses happen exactly when a false YES suppressed forwarding —
//! the simulator accounts for them via [`Network::expected_recipients`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod broker;
pub mod metrics;
pub mod network;
pub mod policy;
pub mod propagation;
pub mod topology;

pub use broker::Broker;
pub use metrics::NetworkMetrics;
pub use network::{DeliveryReport, Network};
pub use policy::CoveringPolicy;
pub use topology::{BrokerId, Topology};
