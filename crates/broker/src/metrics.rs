//! Traffic and delivery metrics for broker-network runs.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::AddAssign;

/// Counters accumulated by a [`crate::Network`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct NetworkMetrics {
    /// Broker-to-broker subscription messages.
    pub subscription_messages: u64,
    /// Subscriptions *not* forwarded on a link because the policy declared
    /// them covered.
    pub subscriptions_suppressed: u64,
    /// Broker-to-broker unsubscription (teardown) messages.
    pub unsubscription_messages: u64,
    /// Suppressed subscriptions later promoted because their cover left.
    pub subscriptions_promoted: u64,
    /// Broker-to-broker publication messages.
    pub publication_messages: u64,
    /// Notifications delivered to local subscribers.
    pub notifications: u64,
    /// Total routing-table entries installed across all brokers/links.
    pub table_entries: u64,
}

impl AddAssign for NetworkMetrics {
    fn add_assign(&mut self, rhs: NetworkMetrics) {
        self.subscription_messages += rhs.subscription_messages;
        self.subscriptions_suppressed += rhs.subscriptions_suppressed;
        self.unsubscription_messages += rhs.unsubscription_messages;
        self.subscriptions_promoted += rhs.subscriptions_promoted;
        self.publication_messages += rhs.publication_messages;
        self.notifications += rhs.notifications;
        self.table_entries += rhs.table_entries;
    }
}

impl fmt::Display for NetworkMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sub msgs: {}, suppressed: {}, pub msgs: {}, notifications: {}, table entries: {}",
            self.subscription_messages,
            self.subscriptions_suppressed,
            self.publication_messages,
            self.notifications,
            self.table_entries
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assign_sums_fields() {
        let mut a = NetworkMetrics {
            subscription_messages: 1,
            subscriptions_suppressed: 2,
            unsubscription_messages: 6,
            subscriptions_promoted: 7,
            publication_messages: 3,
            notifications: 4,
            table_entries: 5,
        };
        a += a;
        assert_eq!(a.subscription_messages, 2);
        assert_eq!(a.subscriptions_suppressed, 4);
        assert_eq!(a.unsubscription_messages, 12);
        assert_eq!(a.subscriptions_promoted, 14);
        assert_eq!(a.publication_messages, 6);
        assert_eq!(a.notifications, 8);
        assert_eq!(a.table_entries, 10);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!NetworkMetrics::default().to_string().is_empty());
    }
}
