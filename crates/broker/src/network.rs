//! The synchronous broker-network simulator.

use crate::broker::Broker;
use crate::metrics::NetworkMetrics;
use crate::policy::CoveringPolicy;
use crate::topology::{BrokerId, Topology};
use psc_model::{Publication, Subscription, SubscriptionId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// What happened to one published notification.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeliveryReport {
    /// Subscription ids notified, in visit order.
    pub delivered_to: Vec<SubscriptionId>,
    /// Broker-to-broker publication messages used.
    pub messages: u64,
    /// Brokers the publication visited (the delivery tree's nodes).
    pub visited: Vec<BrokerId>,
}

/// A simulated content-based pub/sub broker network using reverse path
/// forwarding with a pluggable covering policy.
///
/// # Example — the paper's Figure 1
/// ```
/// use psc_broker::{Network, Topology, CoveringPolicy, BrokerId};
/// use psc_model::{Schema, Subscription, Publication, SubscriptionId};
///
/// let schema = Schema::uniform(1, 0, 99);
/// let mut net = Network::new(Topology::figure1(), CoveringPolicy::Pairwise, 7);
/// let s1 = Subscription::builder(&schema).range("x0", 0, 50).build()?;
/// let s2 = Subscription::builder(&schema).range("x0", 10, 20).build()?;
/// net.subscribe(BrokerId(0), SubscriptionId(1), s1); // S1 at B1
/// net.subscribe(BrokerId(5), SubscriptionId(2), s2); // S2 at B6 (s2 ⊑ s1)
///
/// // P1 at B9 publishes a notification matching both subscriptions.
/// let n1 = Publication::builder(&schema).set("x0", 15).build()?;
/// let report = net.publish(BrokerId(8), &n1);
/// assert!(report.delivered_to.contains(&SubscriptionId(1)));
/// assert!(report.delivered_to.contains(&SubscriptionId(2)));
/// # Ok::<(), psc_model::ModelError>(())
/// ```
#[derive(Debug)]
pub struct Network {
    topology: Topology,
    brokers: Vec<Broker>,
    policy: CoveringPolicy,
    rng: StdRng,
    metrics: NetworkMetrics,
    /// Global registry for ground-truth delivery accounting.
    registry: Vec<(SubscriptionId, BrokerId, Subscription)>,
}

impl Network {
    /// Creates a network over `topology` with the given covering policy and
    /// RNG seed (the probabilistic policy draws from it).
    pub fn new(topology: Topology, policy: CoveringPolicy, seed: u64) -> Self {
        let brokers = (0..topology.len())
            .map(|i| Broker::new(BrokerId(i)))
            .collect();
        Network {
            topology,
            brokers,
            policy,
            rng: StdRng::seed_from_u64(seed),
            metrics: NetworkMetrics::default(),
            registry: Vec::new(),
        }
    }

    /// The network's topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Accumulated traffic metrics.
    pub fn metrics(&self) -> NetworkMetrics {
        let mut m = self.metrics;
        m.table_entries = self.brokers.iter().map(|b| b.table_size()).sum();
        m
    }

    /// The broker at `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn broker(&self, id: BrokerId) -> &Broker {
        &self.brokers[id.0]
    }

    /// Registers a subscriber's subscription at `at` and propagates it
    /// through the network (reverse path forwarding + covering policy).
    ///
    /// # Panics
    /// Panics if `id` was already subscribed anywhere in this network.
    pub fn subscribe(&mut self, at: BrokerId, id: SubscriptionId, sub: Subscription) {
        assert!(
            !self.registry.iter().any(|(rid, _, _)| *rid == id),
            "subscription id {id} already registered"
        );
        self.registry.push((id, at, sub.clone()));
        self.brokers[at.0].mark_seen(id);
        self.brokers[at.0].add_local(id, sub.clone());

        self.propagate(id, &sub, at, None);
    }

    /// Floods subscription `id` starting at `origin` (which must already
    /// hold it locally or have received it), honouring the covering policy
    /// and recording suppressions for later promotion.
    fn propagate(
        &mut self,
        id: SubscriptionId,
        sub: &Subscription,
        origin: BrokerId,
        origin_from: Option<BrokerId>,
    ) {
        // (arrived_at, came_from) pairs to process.
        let mut queue: VecDeque<(BrokerId, Option<BrokerId>)> =
            VecDeque::from([(origin, origin_from)]);
        while let Some((here, from)) = queue.pop_front() {
            let neighbor_ids: Vec<BrokerId> = self.topology.neighbors(here).to_vec();
            for next in neighbor_ids {
                if Some(next) == from {
                    continue;
                }
                if self.brokers[next.0].has_seen(id) {
                    // Cycle or converging path: first arrival wins.
                    continue;
                }
                let covered = {
                    let already = self.brokers[here.0].sent_to(next);
                    self.policy.is_covered(sub, &already, &mut self.rng)
                };
                if covered {
                    self.metrics.subscriptions_suppressed += 1;
                    self.brokers[here.0].add_suppressed(next, id, sub.clone());
                    continue;
                }
                self.brokers[here.0].add_sent(next, id, sub.clone());
                self.brokers[next.0].mark_seen(id);
                self.brokers[next.0].add_received(here, id, sub.clone());
                self.metrics.subscription_messages += 1;
                queue.push_back((next, Some(here)));
            }
        }
    }

    /// Cancels subscription `id` network-wide (Section 5 of the paper):
    /// removes its local registration and every routing-table entry it
    /// installed, then re-evaluates subscriptions that had been suppressed
    /// by covering on the affected links — those no longer covered are
    /// *promoted*, i.e. forwarded now.
    ///
    /// Returns `false` when the id is unknown.
    pub fn unsubscribe(&mut self, id: SubscriptionId) -> bool {
        let Some(pos) = self.registry.iter().position(|(rid, _, _)| *rid == id) else {
            return false;
        };
        let (_, at, _) = self.registry.remove(pos);
        self.brokers[at.0].remove_local(id);

        // Walk the links the subscription traveled, tearing down state.
        let mut queue: VecDeque<BrokerId> = VecDeque::from([at]);
        let mut affected_links: Vec<(BrokerId, BrokerId)> = Vec::new();
        while let Some(here) = queue.pop_front() {
            self.brokers[here.0].unmark_seen(id);
            self.brokers[here.0].remove_suppressed_everywhere(id);
            for next in self.brokers[here.0].sent_links_for(id) {
                self.brokers[here.0].remove_sent(next, id);
                self.brokers[next.0].remove_received(here, id);
                self.metrics.unsubscription_messages += 1;
                affected_links.push((here, next));
                queue.push_back(next);
            }
        }

        // Promote suppressed subscriptions that the departed one was (part
        // of) covering. Re-check every suppressed entry on affected links;
        // still-covered ones are re-recorded as suppressed.
        for (here, next) in affected_links {
            let candidates = self.brokers[here.0].take_suppressed(next);
            for (sid, ssub) in candidates {
                let covered = {
                    let already = self.brokers[here.0].sent_to(next);
                    self.policy.is_covered(&ssub, &already, &mut self.rng)
                };
                if covered {
                    self.brokers[here.0].add_suppressed(next, sid, ssub);
                    continue;
                }
                // Forward now, then let it continue from `next` like a
                // fresh arrival there.
                self.brokers[here.0].add_sent(next, sid, ssub.clone());
                self.brokers[next.0].mark_seen(sid);
                self.brokers[next.0].add_received(here, sid, ssub.clone());
                self.metrics.subscription_messages += 1;
                self.metrics.subscriptions_promoted += 1;
                self.propagate(sid, &ssub, next, Some(here));
            }
        }
        true
    }

    /// Publishes `p` at broker `at`, routing it along reverse subscription
    /// paths; returns the delivery report.
    pub fn publish(&mut self, at: BrokerId, p: &Publication) -> DeliveryReport {
        let mut delivered_to = Vec::new();
        let mut messages = 0u64;
        let mut visited = Vec::new();
        let mut seen = vec![false; self.brokers.len()];

        let mut queue: VecDeque<(BrokerId, Option<BrokerId>)> = VecDeque::from([(at, None)]);
        seen[at.0] = true;
        while let Some((here, from)) = queue.pop_front() {
            visited.push(here);
            let local = self.brokers[here.0].local_matches(p);
            self.metrics.notifications += local.len() as u64;
            delivered_to.extend(local);

            let neighbor_ids: Vec<BrokerId> = self.topology.neighbors(here).to_vec();
            for next in neighbor_ids {
                if Some(next) == from || seen[next.0] {
                    continue;
                }
                if self.brokers[here.0].link_wants(next, p) {
                    seen[next.0] = true;
                    messages += 1;
                    self.metrics.publication_messages += 1;
                    queue.push_back((next, Some(here)));
                }
            }
        }
        DeliveryReport {
            delivered_to,
            messages,
            visited,
        }
    }

    /// Ground truth: every registered subscription that matches `p`,
    /// regardless of routing state. The difference between this and
    /// [`Network::publish`]'s report is the set of deliveries lost to
    /// erroneous covering decisions.
    pub fn expected_recipients(&self, p: &Publication) -> Vec<SubscriptionId> {
        self.registry
            .iter()
            .filter_map(|(id, _, s)| s.matches(p).then_some(*id))
            .collect()
    }

    /// Total number of registered subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.registry.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psc_model::Schema;

    fn schema() -> Schema {
        Schema::uniform(1, 0, 99)
    }

    fn sub(schema: &Schema, lo: i64, hi: i64) -> Subscription {
        Subscription::builder(schema)
            .range("x0", lo, hi)
            .build()
            .unwrap()
    }

    fn pub1(schema: &Schema, v: i64) -> Publication {
        Publication::builder(schema).set("x0", v).build().unwrap()
    }

    /// The full worked example of the paper's Section 2 / Figure 1.
    #[test]
    fn figure1_covering_and_delivery_trees() {
        let schema = schema();
        let b = |i: usize| BrokerId(i - 1);
        let mut net = Network::new(Topology::figure1(), CoveringPolicy::Pairwise, 1);

        // S1 subscribes s1 at B1: floods the whole tree (8 edges).
        net.subscribe(b(1), SubscriptionId(1), sub(&schema, 0, 50));
        assert_eq!(net.metrics().subscription_messages, 8);

        // S2 subscribes s2 ⊑ s1 at B6. Path: B6→B4 (1 msg). At B4, covering
        // suppresses B5 and B7 (s1 already sent there) but forwards to B3
        // (s1 was *received from* B3, never sent to it). At B3: suppressed
        // toward B2 (s1 sent there), forwarded to B1. Total 3 new messages.
        net.subscribe(b(6), SubscriptionId(2), sub(&schema, 10, 20));
        let m = net.metrics();
        assert_eq!(m.subscription_messages, 11, "8 for s1 + 3 for s2");
        assert_eq!(m.subscriptions_suppressed, 3, "B4→B5, B4→B7, B3→B2");

        // P1 at B9 publishes n1 matching s2 (hence s1): the delivery tree
        // must connect B9, B7, B4, B3, B1, B6 (the paper's first tree).
        let n1 = pub1(&schema, 15);
        let report = net.publish(b(9), &n1);
        let mut tree: Vec<usize> = report.visited.iter().map(|x| x.0 + 1).collect();
        tree.sort_unstable();
        assert_eq!(tree, vec![1, 3, 4, 6, 7, 9]);
        assert_eq!(report.delivered_to.len(), 2);
        assert!(report.delivered_to.contains(&SubscriptionId(1)));
        assert!(report.delivered_to.contains(&SubscriptionId(2)));
        assert_eq!(report.messages, 5, "five tree edges");

        // P2 at B5 publishes n2 matching s1 only: tree B5, B4, B3, B1.
        let n2 = pub1(&schema, 40);
        let report = net.publish(b(5), &n2);
        let mut tree: Vec<usize> = report.visited.iter().map(|x| x.0 + 1).collect();
        tree.sort_unstable();
        assert_eq!(tree, vec![1, 3, 4, 5]);
        assert_eq!(report.delivered_to, vec![SubscriptionId(1)]);
    }

    #[test]
    fn flooding_never_suppresses() {
        let schema = schema();
        let mut net = Network::new(Topology::figure1(), CoveringPolicy::Flooding, 1);
        net.subscribe(BrokerId(0), SubscriptionId(1), sub(&schema, 0, 50));
        net.subscribe(BrokerId(5), SubscriptionId(2), sub(&schema, 10, 20));
        let m = net.metrics();
        assert_eq!(
            m.subscription_messages, 16,
            "both subscriptions flood all 8 edges"
        );
        assert_eq!(m.subscriptions_suppressed, 0);
    }

    #[test]
    fn deterministic_covering_loses_no_deliveries() {
        let schema = schema();
        for policy in [CoveringPolicy::Flooding, CoveringPolicy::Pairwise] {
            let mut net = Network::new(Topology::figure1(), policy, 3);
            net.subscribe(BrokerId(0), SubscriptionId(1), sub(&schema, 0, 50));
            net.subscribe(BrokerId(5), SubscriptionId(2), sub(&schema, 10, 20));
            net.subscribe(BrokerId(7), SubscriptionId(3), sub(&schema, 40, 80));
            for v in [0, 15, 45, 60, 99] {
                let p = pub1(&schema, v);
                for at in 0..9 {
                    let mut actual = net.publish(BrokerId(at), &p).delivered_to;
                    let mut expected = net.expected_recipients(&p);
                    actual.sort_unstable_by_key(|s| s.0);
                    expected.sort_unstable_by_key(|s| s.0);
                    assert_eq!(
                        actual, expected,
                        "policy lost deliveries at v={v} broker={at}"
                    );
                }
            }
        }
    }

    #[test]
    fn group_policy_covers_union_on_chain() {
        let schema = schema();
        // B1 - B2 - B3. Two subscriptions at B1 jointly cover [0, 99].
        let mut net = Network::new(Topology::chain(3), CoveringPolicy::group(1e-12), 5);
        net.subscribe(BrokerId(0), SubscriptionId(1), sub(&schema, 0, 60));
        net.subscribe(BrokerId(0), SubscriptionId(2), sub(&schema, 50, 99));
        let before = net.metrics().subscription_messages;
        assert_eq!(before, 4, "two subscriptions × two links");
        // A third subscription inside the union is suppressed everywhere.
        net.subscribe(BrokerId(0), SubscriptionId(3), sub(&schema, 30, 70));
        let m = net.metrics();
        assert_eq!(m.subscription_messages, 4, "no new traffic");
        assert_eq!(m.subscriptions_suppressed, 1, "suppressed on B1→B2");
        // Pairwise would have forwarded it (no single cover).
        let mut pw = Network::new(Topology::chain(3), CoveringPolicy::Pairwise, 5);
        pw.subscribe(BrokerId(0), SubscriptionId(1), sub(&schema, 0, 60));
        pw.subscribe(BrokerId(0), SubscriptionId(2), sub(&schema, 50, 99));
        pw.subscribe(BrokerId(0), SubscriptionId(3), sub(&schema, 30, 70));
        assert_eq!(pw.metrics().subscription_messages, 6);
        // And despite suppression, deliveries still work: any point in
        // [30, 70] matches sub 1 or 2, which did propagate.
        let p = pub1(&schema, 55);
        let report = net.publish(BrokerId(2), &p);
        assert!(report.delivered_to.contains(&SubscriptionId(3)));
    }

    #[test]
    fn publication_stays_local_without_interest() {
        let schema = schema();
        let mut net = Network::new(Topology::chain(4), CoveringPolicy::Pairwise, 1);
        net.subscribe(BrokerId(0), SubscriptionId(1), sub(&schema, 0, 10));
        let p = pub1(&schema, 90); // matches nothing
        let report = net.publish(BrokerId(3), &p);
        assert_eq!(report.messages, 0);
        assert!(report.delivered_to.is_empty());
        assert_eq!(report.visited, vec![BrokerId(3)]);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_subscription_id_panics() {
        let schema = schema();
        let mut net = Network::new(Topology::chain(2), CoveringPolicy::Flooding, 1);
        net.subscribe(BrokerId(0), SubscriptionId(1), sub(&schema, 0, 10));
        net.subscribe(BrokerId(1), SubscriptionId(1), sub(&schema, 0, 10));
    }

    #[test]
    fn local_delivery_at_publishing_broker() {
        let schema = schema();
        let mut net = Network::new(Topology::chain(2), CoveringPolicy::Pairwise, 1);
        net.subscribe(BrokerId(0), SubscriptionId(1), sub(&schema, 0, 99));
        let p = pub1(&schema, 5);
        let report = net.publish(BrokerId(0), &p);
        assert_eq!(report.delivered_to, vec![SubscriptionId(1)]);
        assert_eq!(report.messages, 0, "subscriber is local");
    }

    /// Section 5's cancellation rule: when the covering subscription leaves,
    /// the suppressed one must be promoted so deliveries keep working.
    #[test]
    fn unsubscribe_promotes_suppressed_subscriptions() {
        let schema = schema();
        let b = |i: usize| BrokerId(i - 1);
        let mut net = Network::new(Topology::figure1(), CoveringPolicy::Pairwise, 1);
        net.subscribe(b(1), SubscriptionId(1), sub(&schema, 0, 50)); // s1 at B1
        net.subscribe(b(6), SubscriptionId(2), sub(&schema, 10, 20)); // s2 ⊑ s1 at B6
        assert_eq!(net.metrics().subscriptions_suppressed, 3);

        // Cancel s1: its 8 table entries tear down; s2 must now reach the
        // brokers it was suppressed from (B5, B7→{B8,B9}, B2).
        assert!(net.unsubscribe(SubscriptionId(1)));
        let m = net.metrics();
        assert_eq!(m.unsubscription_messages, 8);
        assert!(
            m.subscriptions_promoted >= 3,
            "promoted = {}",
            m.subscriptions_promoted
        );

        // A publication matching s2 from anywhere still reaches S2 at B6.
        let p = pub1(&schema, 15);
        for origin in 1..=9usize {
            let mut actual = net.publish(b(origin), &p).delivered_to;
            actual.sort_unstable_by_key(|s| s.0);
            assert_eq!(actual, vec![SubscriptionId(2)], "origin B{origin}");
        }
        // And s1 is truly gone: a publication matching only s1 reaches nobody.
        let p = pub1(&schema, 40);
        assert!(net.publish(b(9), &p).delivered_to.is_empty());
    }

    #[test]
    fn unsubscribe_unknown_id_returns_false() {
        let mut net = Network::new(Topology::chain(2), CoveringPolicy::Pairwise, 1);
        assert!(!net.unsubscribe(SubscriptionId(42)));
    }

    #[test]
    fn unsubscribe_without_suppression_just_tears_down() {
        let schema = schema();
        let mut net = Network::new(Topology::chain(3), CoveringPolicy::Pairwise, 1);
        net.subscribe(BrokerId(0), SubscriptionId(1), sub(&schema, 0, 50));
        assert!(net.unsubscribe(SubscriptionId(1)));
        let m = net.metrics();
        assert_eq!(m.unsubscription_messages, 2);
        assert_eq!(m.subscriptions_promoted, 0);
        assert_eq!(m.table_entries, 0);
        assert_eq!(net.subscription_count(), 0);
        // Publications are now ignored everywhere.
        let p = pub1(&schema, 25);
        assert!(net.publish(BrokerId(2), &p).delivered_to.is_empty());
    }

    #[test]
    fn unsubscribe_then_resubscribe_same_id() {
        let schema = schema();
        let mut net = Network::new(Topology::chain(3), CoveringPolicy::Pairwise, 1);
        net.subscribe(BrokerId(0), SubscriptionId(1), sub(&schema, 0, 50));
        assert!(net.unsubscribe(SubscriptionId(1)));
        // The id is free again.
        net.subscribe(BrokerId(2), SubscriptionId(1), sub(&schema, 60, 90));
        let p = pub1(&schema, 70);
        let report = net.publish(BrokerId(0), &p);
        assert_eq!(report.delivered_to, vec![SubscriptionId(1)]);
    }

    #[test]
    fn chained_promotion_after_multiple_unsubscribes() {
        let schema = schema();
        // s1 ⊒ s2 ⊒ s3 all at B1 on a chain; cancel outer layers one by one.
        let mut net = Network::new(Topology::chain(4), CoveringPolicy::Pairwise, 1);
        net.subscribe(BrokerId(0), SubscriptionId(1), sub(&schema, 0, 90));
        net.subscribe(BrokerId(0), SubscriptionId(2), sub(&schema, 10, 60));
        net.subscribe(BrokerId(0), SubscriptionId(3), sub(&schema, 20, 40));
        // Only s1 propagated (3 links); s2, s3 suppressed at B1.
        assert_eq!(net.metrics().subscription_messages, 3);

        assert!(net.unsubscribe(SubscriptionId(1)));
        // s2 promoted (s3 still covered by it).
        let p = pub1(&schema, 30);
        let r = net.publish(BrokerId(3), &p);
        let mut ids = r.delivered_to;
        ids.sort_unstable_by_key(|s| s.0);
        assert_eq!(ids, vec![SubscriptionId(2), SubscriptionId(3)]);

        assert!(net.unsubscribe(SubscriptionId(2)));
        // s3 promoted in turn.
        let r = net.publish(BrokerId(3), &p);
        assert_eq!(r.delivered_to, vec![SubscriptionId(3)]);
        assert!(net.metrics().subscriptions_promoted >= 2);
    }

    #[test]
    fn table_entries_metric_counts_interests() {
        let schema = schema();
        let mut net = Network::new(Topology::chain(3), CoveringPolicy::Flooding, 1);
        net.subscribe(BrokerId(0), SubscriptionId(1), sub(&schema, 0, 10));
        // s1 installed at B2 (from B1) and B3 (from B2): 2 entries.
        assert_eq!(net.metrics().table_entries, 2);
    }
}
