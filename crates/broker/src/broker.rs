//! A single broker's routing state.

use crate::topology::BrokerId;
use psc_model::{Publication, Subscription, SubscriptionId};
use std::collections::{HashMap, HashSet};

/// Per-broker state: local subscriptions, per-link interests received
/// (driving publication forwarding), per-link subscriptions sent (driving
/// covering decisions) and per-link subscriptions *suppressed* by covering
/// (needed to promote them when a covering subscription is cancelled —
/// Section 5 of the paper).
///
/// Reverse path forwarding invariant: a publication is forwarded to neighbor
/// `N` exactly when some subscription *received from* `N` matches it —
/// subscribers beyond `N` asked for it. Covering prunes what gets *sent to*
/// `N`: a suppressed subscription is implied by an earlier, wider one, so
/// matching publications still flow (unless the probabilistic policy erred).
#[derive(Debug, Clone)]
pub struct Broker {
    id: BrokerId,
    /// Subscriptions of locally attached subscribers.
    local: Vec<(SubscriptionId, Subscription)>,
    /// Interests received per neighbor link.
    received: HashMap<BrokerId, Vec<(SubscriptionId, Subscription)>>,
    /// Subscriptions actually forwarded per neighbor link.
    sent: HashMap<BrokerId, Vec<(SubscriptionId, Subscription)>>,
    /// Subscriptions withheld per neighbor link by a covering decision.
    suppressed: HashMap<BrokerId, Vec<(SubscriptionId, Subscription)>>,
    /// Subscription ids seen at this broker (cycle/duplicate guard).
    seen: HashSet<SubscriptionId>,
}

impl Broker {
    /// Creates an empty broker.
    pub fn new(id: BrokerId) -> Self {
        Broker {
            id,
            local: Vec::new(),
            received: HashMap::new(),
            sent: HashMap::new(),
            suppressed: HashMap::new(),
            seen: HashSet::new(),
        }
    }

    /// This broker's id.
    pub fn id(&self) -> BrokerId {
        self.id
    }

    /// Whether this broker has already processed subscription `id`.
    pub fn has_seen(&self, id: SubscriptionId) -> bool {
        self.seen.contains(&id)
    }

    /// Marks a subscription as processed; returns `false` if it already was.
    pub fn mark_seen(&mut self, id: SubscriptionId) -> bool {
        self.seen.insert(id)
    }

    /// Unmarks a subscription (used on unsubscription so the id could in
    /// principle be reused).
    pub fn unmark_seen(&mut self, id: SubscriptionId) {
        self.seen.remove(&id);
    }

    /// The installed body of subscription `id`, wherever it lives
    /// (local table or any link's received table). `None` if the id is
    /// not installed — for a seen id that means never, since `seen` is
    /// only marked alongside an install.
    pub fn subscription_body(&self, id: SubscriptionId) -> Option<&Subscription> {
        self.local
            .iter()
            .chain(self.received.values().flatten())
            .find_map(|(i, s)| (*i == id).then_some(s))
    }

    /// Registers a local subscriber's subscription.
    pub fn add_local(&mut self, id: SubscriptionId, sub: Subscription) {
        self.local.push((id, sub));
    }

    /// Removes a local subscription; returns whether it existed.
    pub fn remove_local(&mut self, id: SubscriptionId) -> bool {
        let before = self.local.len();
        self.local.retain(|(i, _)| *i != id);
        before != self.local.len()
    }

    /// Records a subscription received from neighbor `from`.
    pub fn add_received(&mut self, from: BrokerId, id: SubscriptionId, sub: Subscription) {
        self.received.entry(from).or_default().push((id, sub));
    }

    /// Removes a received entry; returns whether it existed.
    pub fn remove_received(&mut self, from: BrokerId, id: SubscriptionId) -> bool {
        match self.received.get_mut(&from) {
            None => false,
            Some(v) => {
                let before = v.len();
                v.retain(|(i, _)| *i != id);
                before != v.len()
            }
        }
    }

    /// Records a subscription forwarded to neighbor `to`.
    pub fn add_sent(&mut self, to: BrokerId, id: SubscriptionId, sub: Subscription) {
        self.sent.entry(to).or_default().push((id, sub));
    }

    /// Removes a sent entry; returns whether it existed.
    pub fn remove_sent(&mut self, to: BrokerId, id: SubscriptionId) -> bool {
        match self.sent.get_mut(&to) {
            None => false,
            Some(v) => {
                let before = v.len();
                v.retain(|(i, _)| *i != id);
                before != v.len()
            }
        }
    }

    /// Records a subscription withheld from neighbor `to` by covering.
    pub fn add_suppressed(&mut self, to: BrokerId, id: SubscriptionId, sub: Subscription) {
        self.suppressed.entry(to).or_default().push((id, sub));
    }

    /// Removes a suppressed entry everywhere (on unsubscription of `id`).
    pub fn remove_suppressed_everywhere(&mut self, id: SubscriptionId) {
        for v in self.suppressed.values_mut() {
            v.retain(|(i, _)| *i != id);
        }
    }

    /// Takes (removes and returns) the suppressed entries for link `to` —
    /// the candidates for promotion after a covering subscription left.
    pub fn take_suppressed(&mut self, to: BrokerId) -> Vec<(SubscriptionId, Subscription)> {
        self.suppressed.remove(&to).unwrap_or_default()
    }

    /// The subscriptions already forwarded to `to` (covering context).
    pub fn sent_to(&self, to: BrokerId) -> Vec<Subscription> {
        self.sent
            .get(&to)
            .map_or_else(Vec::new, |v| v.iter().map(|(_, s)| s.clone()).collect())
    }

    /// The `(id, subscription)` pairs already forwarded to `to` — the
    /// covering context plus the ids needed for retract-and-replace
    /// (a new subscription that subsumes previously forwarded ones
    /// retracts them by id).
    pub fn sent_entries(&self, to: BrokerId) -> Vec<(SubscriptionId, Subscription)> {
        self.sent.get(&to).cloned().unwrap_or_default()
    }

    /// The `(id, subscription)` pairs currently withheld from `to` by a
    /// covering decision (observability / invariant-checking view; the
    /// mutating sibling is [`Broker::take_suppressed`]).
    pub fn suppressed_entries(&self, to: BrokerId) -> Vec<(SubscriptionId, Subscription)> {
        self.suppressed.get(&to).cloned().unwrap_or_default()
    }

    /// Neighbors to which subscription `id` was forwarded.
    pub fn sent_links_for(&self, id: SubscriptionId) -> Vec<BrokerId> {
        self.sent
            .iter()
            .filter_map(|(to, v)| v.iter().any(|(i, _)| *i == id).then_some(*to))
            .collect()
    }

    /// Local subscription ids matching `p`.
    pub fn local_matches(&self, p: &Publication) -> Vec<SubscriptionId> {
        self.local
            .iter()
            .filter_map(|(id, s)| s.matches(p).then_some(*id))
            .collect()
    }

    /// Whether any interest received from `from` matches `p` — i.e. whether
    /// `p` must be forwarded to that neighbor.
    pub fn link_wants(&self, from: BrokerId, p: &Publication) -> bool {
        self.received
            .get(&from)
            .is_some_and(|subs| subs.iter().any(|(_, s)| s.matches(p)))
    }

    /// Total routing-table entries (received interests) on this broker.
    pub fn table_size(&self) -> u64 {
        self.received.values().map(|v| v.len() as u64).sum()
    }

    /// Number of locally attached subscriptions.
    pub fn local_len(&self) -> usize {
        self.local.len()
    }

    /// Iterates over locally attached `(id, subscription)` pairs.
    pub fn local_subscriptions(&self) -> impl Iterator<Item = (SubscriptionId, &Subscription)> {
        self.local.iter().map(|(id, s)| (*id, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psc_model::Schema;

    fn schema() -> Schema {
        Schema::uniform(1, 0, 99)
    }

    fn sub(schema: &Schema, lo: i64, hi: i64) -> Subscription {
        Subscription::builder(schema)
            .range("x0", lo, hi)
            .build()
            .unwrap()
    }

    #[test]
    fn local_matching() {
        let schema = schema();
        let mut b = Broker::new(BrokerId(0));
        b.add_local(SubscriptionId(1), sub(&schema, 0, 50));
        b.add_local(SubscriptionId(2), sub(&schema, 60, 99));
        let p = Publication::builder(&schema).set("x0", 10).build().unwrap();
        assert_eq!(b.local_matches(&p), vec![SubscriptionId(1)]);
        assert_eq!(b.local_len(), 2);
        assert!(b.remove_local(SubscriptionId(1)));
        assert!(!b.remove_local(SubscriptionId(1)));
        assert_eq!(b.local_len(), 1);
    }

    #[test]
    fn link_wants_consults_received_interests() {
        let schema = schema();
        let mut b = Broker::new(BrokerId(0));
        b.add_received(BrokerId(1), SubscriptionId(5), sub(&schema, 20, 30));
        let hit = Publication::builder(&schema).set("x0", 25).build().unwrap();
        let miss = Publication::builder(&schema).set("x0", 35).build().unwrap();
        assert!(b.link_wants(BrokerId(1), &hit));
        assert!(!b.link_wants(BrokerId(1), &miss));
        assert!(!b.link_wants(BrokerId(2), &hit)); // unknown link: nothing
        assert!(b.remove_received(BrokerId(1), SubscriptionId(5)));
        assert!(!b.link_wants(BrokerId(1), &hit));
    }

    #[test]
    fn subscription_body_searches_local_and_received() {
        let schema = schema();
        let mut b = Broker::new(BrokerId(0));
        b.add_local(SubscriptionId(1), sub(&schema, 0, 10));
        b.add_received(BrokerId(2), SubscriptionId(3), sub(&schema, 20, 30));
        assert_eq!(
            b.subscription_body(SubscriptionId(1)),
            Some(&sub(&schema, 0, 10))
        );
        assert_eq!(
            b.subscription_body(SubscriptionId(3)),
            Some(&sub(&schema, 20, 30))
        );
        assert_eq!(b.subscription_body(SubscriptionId(9)), None);
        b.remove_local(SubscriptionId(1));
        assert_eq!(b.subscription_body(SubscriptionId(1)), None);
    }

    #[test]
    fn seen_guard_roundtrip() {
        let mut b = Broker::new(BrokerId(0));
        assert!(b.mark_seen(SubscriptionId(9)));
        assert!(!b.mark_seen(SubscriptionId(9)));
        assert!(b.has_seen(SubscriptionId(9)));
        b.unmark_seen(SubscriptionId(9));
        assert!(!b.has_seen(SubscriptionId(9)));
    }

    #[test]
    fn sent_tracking_with_ids() {
        let schema = schema();
        let mut b = Broker::new(BrokerId(0));
        assert!(b.sent_to(BrokerId(1)).is_empty());
        b.add_sent(BrokerId(1), SubscriptionId(1), sub(&schema, 0, 10));
        b.add_sent(BrokerId(2), SubscriptionId(1), sub(&schema, 0, 10));
        assert_eq!(b.sent_to(BrokerId(1)).len(), 1);
        let mut links = b.sent_links_for(SubscriptionId(1));
        links.sort_unstable_by_key(|l| l.0);
        assert_eq!(links, vec![BrokerId(1), BrokerId(2)]);
        assert!(b.remove_sent(BrokerId(1), SubscriptionId(1)));
        assert!(!b.remove_sent(BrokerId(1), SubscriptionId(1)));
        assert_eq!(b.sent_links_for(SubscriptionId(1)), vec![BrokerId(2)]);
    }

    #[test]
    fn suppressed_bookkeeping() {
        let schema = schema();
        let mut b = Broker::new(BrokerId(0));
        b.add_suppressed(BrokerId(1), SubscriptionId(7), sub(&schema, 0, 5));
        b.add_suppressed(BrokerId(1), SubscriptionId(8), sub(&schema, 6, 9));
        b.remove_suppressed_everywhere(SubscriptionId(7));
        let taken = b.take_suppressed(BrokerId(1));
        assert_eq!(taken.len(), 1);
        assert_eq!(taken[0].0, SubscriptionId(8));
        assert!(b.take_suppressed(BrokerId(1)).is_empty());
    }
}
