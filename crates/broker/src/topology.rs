//! Broker-graph topologies.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Identifier of a broker node in a [`Topology`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct BrokerId(pub usize);

impl fmt::Display for BrokerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0 + 1)
    }
}

/// An undirected broker graph.
///
/// The simulator supports arbitrary connected graphs (reverse-path
/// forwarding deduplicates by first arrival), though the paper's settings are
/// trees.
///
/// # Example
/// ```
/// use psc_broker::Topology;
/// let t = Topology::chain(4);
/// assert_eq!(t.len(), 4);
/// assert_eq!(t.neighbors(psc_broker::BrokerId(1)),
///            &[psc_broker::BrokerId(0), psc_broker::BrokerId(2)]);
/// assert!(t.is_connected());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    adjacency: Vec<Vec<BrokerId>>,
}

impl Topology {
    /// Creates a topology with `n` isolated brokers.
    pub fn empty(n: usize) -> Self {
        Topology {
            adjacency: vec![Vec::new(); n],
        }
    }

    /// Adds an undirected edge.
    ///
    /// # Panics
    /// Panics on self-loops, duplicate edges, or out-of-range ids.
    pub fn add_edge(&mut self, a: BrokerId, b: BrokerId) {
        assert_ne!(a, b, "self-loops are not allowed");
        assert!(
            a.0 < self.len() && b.0 < self.len(),
            "broker id out of range"
        );
        assert!(!self.adjacency[a.0].contains(&b), "duplicate edge {a}-{b}");
        self.adjacency[a.0].push(b);
        self.adjacency[b.0].push(a);
    }

    /// A chain `B1 - B2 - … - Bn` (Figure 5 of the paper).
    pub fn chain(n: usize) -> Self {
        let mut t = Topology::empty(n);
        for i in 1..n {
            t.add_edge(BrokerId(i - 1), BrokerId(i));
        }
        t
    }

    /// A star: broker 0 in the center, all others leaves.
    pub fn star(n: usize) -> Self {
        let mut t = Topology::empty(n);
        for i in 1..n {
            t.add_edge(BrokerId(0), BrokerId(i));
        }
        t
    }

    /// The nine-broker example network of the paper's Figure 1:
    ///
    /// ```text
    ///   B1 - B3 - B2          B8
    ///         |               |
    ///        B4 ------------ B7 - B9
    ///       /  \
    ///      B5   B6
    /// ```
    ///
    /// Subscriber S1 connects at B1, S2 at B6; publisher P1 at B9, P2 at B5.
    pub fn figure1() -> Self {
        let mut t = Topology::empty(9);
        let b = |i: usize| BrokerId(i - 1); // paper's 1-based naming
        t.add_edge(b(1), b(3));
        t.add_edge(b(2), b(3));
        t.add_edge(b(3), b(4));
        t.add_edge(b(4), b(5));
        t.add_edge(b(4), b(6));
        t.add_edge(b(4), b(7));
        t.add_edge(b(7), b(8));
        t.add_edge(b(7), b(9));
        t
    }

    /// A uniformly random tree over `n` brokers (each node attaches to a
    /// uniformly chosen earlier node) — the generic distributed setting.
    pub fn random_tree<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        let mut t = Topology::empty(n);
        for i in 1..n {
            let parent = rng.gen_range(0..i);
            t.add_edge(BrokerId(parent), BrokerId(i));
        }
        t
    }

    /// Number of brokers.
    pub fn len(&self) -> usize {
        self.adjacency.len()
    }

    /// Whether the topology has no brokers.
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Neighbors of `id` in insertion order.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn neighbors(&self, id: BrokerId) -> &[BrokerId] {
        &self.adjacency[id.0]
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(|n| n.len()).sum::<usize>() / 2
    }

    /// Whether every broker can reach every other.
    pub fn is_connected(&self) -> bool {
        if self.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.len()];
        let mut queue = VecDeque::from([BrokerId(0)]);
        seen[0] = true;
        let mut count = 1;
        while let Some(b) = queue.pop_front() {
            for &n in self.neighbors(b) {
                if !seen[n.0] {
                    seen[n.0] = true;
                    count += 1;
                    queue.push_back(n);
                }
            }
        }
        count == self.len()
    }

    /// BFS shortest path from `from` to `to` (inclusive), if connected.
    pub fn path(&self, from: BrokerId, to: BrokerId) -> Option<Vec<BrokerId>> {
        let mut prev: Vec<Option<BrokerId>> = vec![None; self.len()];
        let mut seen = vec![false; self.len()];
        let mut queue = VecDeque::from([from]);
        seen[from.0] = true;
        while let Some(b) = queue.pop_front() {
            if b == to {
                let mut path = vec![to];
                let mut cur = to;
                while let Some(p) = prev[cur.0] {
                    path.push(p);
                    cur = p;
                }
                path.reverse();
                return Some(path);
            }
            for &n in self.neighbors(b) {
                if !seen[n.0] {
                    seen[n.0] = true;
                    prev[n.0] = Some(b);
                    queue.push_back(n);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn chain_shape() {
        let t = Topology::chain(5);
        assert_eq!(t.edge_count(), 4);
        assert_eq!(t.neighbors(BrokerId(0)), &[BrokerId(1)]);
        assert_eq!(t.neighbors(BrokerId(2)), &[BrokerId(1), BrokerId(3)]);
        assert!(t.is_connected());
    }

    #[test]
    fn star_shape() {
        let t = Topology::star(6);
        assert_eq!(t.edge_count(), 5);
        assert_eq!(t.neighbors(BrokerId(0)).len(), 5);
        assert!(t.is_connected());
    }

    #[test]
    fn figure1_matches_paper() {
        let t = Topology::figure1();
        assert_eq!(t.len(), 9);
        assert_eq!(t.edge_count(), 8); // a tree
        assert!(t.is_connected());
        // B4 (index 3) is the hub: neighbors B3, B5, B6, B7.
        let mut n: Vec<usize> = t.neighbors(BrokerId(3)).iter().map(|b| b.0 + 1).collect();
        n.sort_unstable();
        assert_eq!(n, vec![3, 5, 6, 7]);
        // The publication path from P1@B9 to S1@B1 runs B9-B7-B4-B3-B1.
        let path = t.path(BrokerId(8), BrokerId(0)).unwrap();
        let names: Vec<usize> = path.iter().map(|b| b.0 + 1).collect();
        assert_eq!(names, vec![9, 7, 4, 3, 1]);
    }

    #[test]
    fn random_tree_is_spanning() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [1usize, 2, 10, 50] {
            let t = Topology::random_tree(n, &mut rng);
            assert_eq!(t.len(), n);
            assert_eq!(t.edge_count(), n.saturating_sub(1));
            assert!(t.is_connected());
        }
    }

    #[test]
    fn disconnected_graph_detected() {
        let t = Topology::empty(3);
        assert!(!t.is_connected());
        assert_eq!(t.path(BrokerId(0), BrokerId(2)), None);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        let mut t = Topology::empty(2);
        t.add_edge(BrokerId(0), BrokerId(0));
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn duplicate_edge_rejected() {
        let mut t = Topology::empty(2);
        t.add_edge(BrokerId(0), BrokerId(1));
        t.add_edge(BrokerId(1), BrokerId(0));
    }

    #[test]
    fn display_uses_one_based_names() {
        assert_eq!(BrokerId(0).to_string(), "B1");
        assert_eq!(BrokerId(8).to_string(), "B9");
    }
}
