//! Proposition 5 / Equation 2: the cost of an erroneous covering decision.
//!
//! Setting (the paper's Figure 5): subscription `s` is issued at broker `B1`
//! of a chain `B1 … Bn`; the existing set `S` already reached every broker.
//! Suppose the probabilistic checker *erroneously* declares `s` covered. A
//! publication matching `s` (but no member of `S`) appears at each broker
//! with probability `ρ`. The publication is found iff it surfaces at a broker
//! that `s` still managed to reach — which requires the (repeated,
//! independent) cover checks along the chain to keep answering correctly.
//!
//! Equation 2 gives the find probability:
//!
//! ```text
//! P(find) = Σ_{i=1..n} ρ · [(1 − ρ)(1 − (1 − ρw)^d)]^(i−1)
//! ```
//!
//! where `1 − (1 − ρw)^d` is the per-broker probability that RSPC correctly
//! detects non-coverage (and therefore forwards `s` one hop further).

use rand::Rng;

/// Per-broker probability that RSPC detects non-coverage: `1 − (1 − ρw)^d`.
///
/// # Panics
/// Panics unless `0 ≤ rho_w ≤ 1`.
pub fn detection_probability(rho_w: f64, d: u64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&rho_w),
        "rho_w must be in [0, 1], got {rho_w}"
    );
    1.0 - (1.0 - rho_w).powi(d.min(i32::MAX as u64) as i32)
}

/// Equation 2: closed-form probability of finding the matching publication
/// along a chain of `n` brokers.
///
/// # Panics
/// Panics unless `0 ≤ rho ≤ 1` and `0 ≤ rho_w ≤ 1`.
pub fn find_probability(n: usize, rho: f64, rho_w: f64, d: u64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&rho),
        "rho must be in [0, 1], got {rho}"
    );
    let fwd = detection_probability(rho_w, d);
    let step = (1.0 - rho) * fwd;
    let mut acc = 0.0;
    let mut pow = 1.0;
    for _ in 0..n {
        acc += rho * pow;
        pow *= step;
    }
    acc
}

/// Monte-Carlo validation of Equation 2: simulates `runs` chains and returns
/// the empirical find rate.
///
/// Each run walks the chain broker by broker: at broker `i` the publication
/// surfaces with probability `ρ` (first surfacing wins); `s` keeps
/// propagating past broker `i` only while each hop's independent RSPC run
/// (success probability `1 − (1 − ρw)^d`) detects non-coverage.
pub fn simulate_chain<R: Rng + ?Sized>(
    n: usize,
    rho: f64,
    rho_w: f64,
    d: u64,
    runs: u64,
    rng: &mut R,
) -> f64 {
    assert!(
        (0.0..=1.0).contains(&rho),
        "rho must be in [0, 1], got {rho}"
    );
    let fwd = detection_probability(rho_w, d);
    let mut found = 0u64;
    for _ in 0..runs {
        let mut s_alive = true; // s reached broker 1 (it was issued there)
        for i in 0..n {
            if i > 0 {
                // s must survive the hop into broker i+1.
                s_alive = s_alive && rng.gen_bool(fwd);
                if !s_alive {
                    break;
                }
            }
            if rng.gen_bool(rho) {
                found += 1;
                break;
            }
        }
    }
    found as f64 / runs as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn detection_probability_limits() {
        assert_eq!(detection_probability(0.0, 100), 0.0);
        assert_eq!(detection_probability(1.0, 1), 1.0);
        let p = detection_probability(0.1, 20);
        let expected: f64 = 1.0 - 0.9f64.powi(20);
        assert!((p - expected).abs() < 1e-12);
    }

    #[test]
    fn single_broker_chain_is_just_rho() {
        assert!((find_probability(1, 0.3, 0.5, 10) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn perfect_detection_reduces_to_geometric_sum() {
        // fwd = 1: P = Σ ρ(1-ρ)^{i-1} = 1 - (1-ρ)^n.
        let n = 8;
        let rho: f64 = 0.25;
        let expected = 1.0 - (1.0 - rho).powi(n as i32);
        assert!((find_probability(n, rho, 1.0, 1) - expected).abs() < 1e-12);
    }

    #[test]
    fn zero_detection_strands_publication_downstream() {
        // fwd = 0: s never leaves B1, so only publications at B1 are found.
        assert!((find_probability(10, 0.2, 0.0, 5) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn monotone_in_d_and_n() {
        let base = find_probability(6, 0.1, 0.01, 10);
        assert!(find_probability(6, 0.1, 0.01, 100) > base);
        assert!(find_probability(12, 0.1, 0.01, 10) > base);
    }

    #[test]
    fn simulation_matches_closed_form() {
        let mut rng = StdRng::seed_from_u64(42);
        for (n, rho, rho_w, d) in [
            (5usize, 0.3, 0.05, 50u64),
            (10, 0.1, 0.02, 100),
            (3, 0.5, 0.5, 2),
        ] {
            let analytic = find_probability(n, rho, rho_w, d);
            let simulated = simulate_chain(n, rho, rho_w, d, 200_000, &mut rng);
            assert!(
                (analytic - simulated).abs() < 0.005,
                "n={n} rho={rho}: analytic {analytic} vs simulated {simulated}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "rho must be in")]
    fn invalid_rho_panics() {
        let _ = find_probability(3, 1.5, 0.1, 10);
    }
}
