//! Subscription-forwarding covering policies.

use psc_core::{PairwiseChecker, SubsumptionChecker, SubsumptionConfig};
use psc_model::Subscription;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// What a broker checks before forwarding a subscription over a link, given
/// the set of subscriptions it has already forwarded over that link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CoveringPolicy {
    /// Forward everything (subscription flooding, Section 2 of the paper).
    Flooding,
    /// Suppress forwarding only when a *single* already-forwarded
    /// subscription covers the new one — the classical deterministic
    /// baseline.
    Pairwise,
    /// Suppress forwarding when the probabilistic group-subsumption checker
    /// declares the new subscription covered by the union of
    /// already-forwarded subscriptions — the paper's contribution. May
    /// erroneously suppress with the configured error probability.
    Group(SubsumptionConfig),
}

impl CoveringPolicy {
    /// The paper's group policy with a given error probability `δ`.
    ///
    /// RSPC sampling is capped at 10 000 iterations per decision — brokers
    /// answer coverage questions on every link of every subscription, so an
    /// unbounded budget would stall the network on instances where the
    /// Algorithm-2 estimate demands astronomically many samples. When the
    /// cap truncates the theoretical budget, the achieved (weaker) error
    /// bound applies to that decision; use
    /// [`CoveringPolicy::Group`] with an explicit config to change the cap.
    ///
    /// # Panics
    /// Panics unless `0 < delta < 1`.
    pub fn group(delta: f64) -> Self {
        CoveringPolicy::Group(
            SubsumptionConfig::builder()
                .error_probability(delta)
                .max_iterations(10_000)
                .build_config(),
        )
    }

    /// Decides whether `s` is covered (and may therefore be withheld) given
    /// the subscriptions already forwarded over the link.
    pub fn is_covered<R: Rng + ?Sized>(
        &self,
        s: &Subscription,
        already_sent: &[Subscription],
        rng: &mut R,
    ) -> bool {
        match self {
            CoveringPolicy::Flooding => false,
            CoveringPolicy::Pairwise => PairwiseChecker.is_covered(s, already_sent),
            CoveringPolicy::Group(config) => SubsumptionChecker::with_config(*config)
                .check(s, already_sent, rng)
                .is_covered(),
        }
    }

    /// Short policy name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            CoveringPolicy::Flooding => "flooding",
            CoveringPolicy::Pairwise => "pairwise",
            CoveringPolicy::Group(_) => "group",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psc_model::Schema;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Subscription, Vec<Subscription>) {
        // Table 3: s covered by the union of s1, s2 but by neither alone.
        let schema = Schema::builder()
            .attribute("x1", 800, 900)
            .attribute("x2", 1000, 1010)
            .build();
        let s = Subscription::builder(&schema)
            .range("x1", 830, 870)
            .range("x2", 1003, 1006)
            .build()
            .unwrap();
        let s1 = Subscription::builder(&schema)
            .range("x1", 820, 850)
            .range("x2", 1001, 1007)
            .build()
            .unwrap();
        let s2 = Subscription::builder(&schema)
            .range("x1", 840, 880)
            .range("x2", 1002, 1009)
            .build()
            .unwrap();
        (s, vec![s1, s2])
    }

    #[test]
    fn flooding_never_covers() {
        let (s, set) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!CoveringPolicy::Flooding.is_covered(&s, &set, &mut rng));
        assert!(!CoveringPolicy::Flooding.is_covered(&s, std::slice::from_ref(&s), &mut rng));
    }

    #[test]
    fn pairwise_sees_single_cover_only() {
        let (s, set) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!CoveringPolicy::Pairwise.is_covered(&s, &set, &mut rng));
        assert!(CoveringPolicy::Pairwise.is_covered(&s, std::slice::from_ref(&s), &mut rng));
    }

    #[test]
    fn group_sees_union_cover() {
        let (s, set) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(CoveringPolicy::group(1e-10).is_covered(&s, &set, &mut rng));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(CoveringPolicy::Flooding.name(), "flooding");
        assert_eq!(CoveringPolicy::Pairwise.name(), "pairwise");
        assert_eq!(CoveringPolicy::group(1e-6).name(), "group");
    }
}
