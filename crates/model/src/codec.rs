//! A compact binary codec for model objects, used by durable storage.
//!
//! The JSON codec in [`crate::wire`] is the *network* representation:
//! self-describing, human-inspectable, and framed by newlines. Durable
//! storage (the service layer's write-ahead log and snapshots) wants the
//! opposite trade-off — dense, fixed-layout, and cheap to decode on a
//! recovery path that replays millions of records. Because the build
//! environment vendors serde as a no-op stand-in, this codec is
//! hand-rolled in the same spirit as `wire`: a small writer/reader pair
//! over little-endian primitives plus encode/decode helpers for the model
//! types that storage persists.
//!
//! ## Encoding rules
//!
//! - All integers are **little-endian** and fixed-width (`u8`, `u32`,
//!   `u64`, `i64`); no varints, so offsets are predictable and decoding
//!   never loops per byte.
//! - Strings are a `u32` byte length followed by UTF-8 bytes.
//! - A [`Subscription`] is its range columns: `u32` arity, then one
//!   `(i64 lo, i64 hi)` pair per attribute in schema order. Decoding
//!   validates against the [`Schema`], so a log written under a different
//!   schema surfaces as a typed error, not garbage data.
//! - A [`Schema`] is a `u32` attribute count, then `(name, i64 lo,
//!   i64 hi)` per attribute.
//!
//! Framing (length prefixes, checksums, magic numbers) is deliberately
//! *not* part of this module — it belongs to the storage layer that owns
//! the files. This module only defines how one value maps to bytes.
//!
//! # Example
//! ```
//! use psc_model::codec::{ByteReader, ByteWriter};
//! use psc_model::{Schema, Subscription};
//!
//! let schema = Schema::uniform(2, 0, 99);
//! let sub = Subscription::builder(&schema).range("x0", 5, 20).build().unwrap();
//!
//! let mut w = ByteWriter::new();
//! w.subscription(&sub);
//! let bytes = w.into_bytes();
//!
//! let mut r = ByteReader::new(&bytes);
//! let back = r.subscription(&schema).unwrap();
//! assert_eq!(back, sub);
//! assert!(r.is_empty());
//! ```

use crate::{ModelError, Range, Schema, Subscription};
use std::fmt;

/// Error raised while decoding binary payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum CodecError {
    /// The payload ended before the value was complete.
    UnexpectedEof {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes left in the payload.
        remaining: usize,
    },
    /// A decoded field is structurally invalid (bad UTF-8, absurd length).
    Invalid(&'static str),
    /// The decoded value failed model validation (wrong arity, range
    /// outside the schema's domain).
    Model(ModelError),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof { needed, remaining } => {
                write!(
                    f,
                    "payload truncated: needed {needed} bytes, {remaining} remaining"
                )
            }
            CodecError::Invalid(what) => write!(f, "invalid field: {what}"),
            CodecError::Model(e) => write!(f, "model validation failed: {e}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<ModelError> for CodecError {
    fn from(e: ModelError) -> Self {
        CodecError::Model(e)
    }
}

/// Appends little-endian binary encodings to a growable buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// A writer with `capacity` bytes pre-allocated.
    pub fn with_capacity(capacity: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// The bytes written so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning its buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `i64`, little-endian.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a string as `u32` length + UTF-8 bytes.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes a subscription as `u32` arity + `(lo, hi)` per attribute.
    pub fn subscription(&mut self, sub: &Subscription) {
        self.u32(sub.arity() as u32);
        for r in sub.ranges() {
            self.i64(r.lo());
            self.i64(r.hi());
        }
    }

    /// Writes a schema as `u32` count + `(name, lo, hi)` per attribute.
    pub fn schema(&mut self, schema: &Schema) {
        self.u32(schema.len() as u32);
        for (_, attr) in schema.iter() {
            self.str(attr.name());
            self.i64(attr.domain().lo());
            self.i64(attr.domain().hi());
        }
    }
}

/// Reads little-endian binary encodings from a byte slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `bytes`, positioned at the start.
    pub fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32`, little-endian.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a `u64`, little-endian.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads an `i64`, little-endian.
    pub fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a string written by [`ByteWriter::str`].
    pub fn str(&mut self) -> Result<String, CodecError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::Invalid("string is not UTF-8"))
    }

    /// Reads a subscription written by [`ByteWriter::subscription`],
    /// validating it against `schema`.
    pub fn subscription(&mut self, schema: &Schema) -> Result<Subscription, CodecError> {
        let arity = self.u32()? as usize;
        if arity != schema.len() {
            return Err(CodecError::Model(ModelError::SchemaMismatch {
                expected: schema.len(),
                found: arity,
            }));
        }
        let mut ranges = Vec::with_capacity(arity);
        for _ in 0..arity {
            let lo = self.i64()?;
            let hi = self.i64()?;
            ranges.push(Range::new(lo, hi)?);
        }
        Ok(Subscription::from_ranges(schema, ranges)?)
    }

    /// Reads a schema written by [`ByteWriter::schema`].
    pub fn schema(&mut self) -> Result<Schema, CodecError> {
        let count = self.u32()? as usize;
        // A schema attribute costs at least 20 encoded bytes (length,
        // name, two endpoints); reject counts the payload cannot hold so
        // a corrupt length cannot trigger a huge allocation.
        if count > self.remaining() / 20 {
            return Err(CodecError::Invalid("schema attribute count too large"));
        }
        let mut builder = Schema::builder();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..count {
            let name = self.str()?;
            let lo = self.i64()?;
            let hi = self.i64()?;
            if lo > hi {
                return Err(CodecError::Invalid("schema attribute domain inverted"));
            }
            if !seen.insert(name.clone()) {
                return Err(CodecError::Invalid("duplicate schema attribute name"));
            }
            builder = builder.attribute(name, lo, hi);
        }
        Ok(builder.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX);
        w.i64(i64::MIN);
        w.str("bID");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.i64().unwrap(), i64::MIN);
        assert_eq!(r.str().unwrap(), "bID");
        assert!(r.is_empty());
    }

    #[test]
    fn subscription_round_trips() {
        let schema = Schema::uniform(3, -50, 50);
        let sub = Subscription::builder(&schema)
            .range("x0", -10, 10)
            .point("x1", 5)
            .range("x2", -50, 50)
            .build()
            .unwrap();
        let mut w = ByteWriter::new();
        w.subscription(&sub);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.subscription(&schema).unwrap(), sub);
        assert!(r.is_empty());
    }

    #[test]
    fn schema_round_trips() {
        let schema = Schema::builder()
            .attribute("bID", 0, 10_000)
            .attribute("size", 10, 30)
            .build();
        let mut w = ByteWriter::new();
        w.schema(&schema);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = r.schema().unwrap();
        assert!(back.same_shape(&schema));
        assert_eq!(back.attribute(crate::AttrId(0)).name(), "bID");
        assert!(r.is_empty());
    }

    #[test]
    fn truncated_payloads_report_eof() {
        let schema = Schema::uniform(2, 0, 99);
        let sub = Subscription::builder(&schema)
            .range("x0", 1, 2)
            .build()
            .unwrap();
        let mut w = ByteWriter::new();
        w.subscription(&sub);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(
                matches!(
                    r.subscription(&schema),
                    Err(CodecError::UnexpectedEof { .. })
                ),
                "cut at {cut} must report EOF"
            );
        }
    }

    #[test]
    fn arity_mismatch_is_a_model_error() {
        let wide = Schema::uniform(3, 0, 99);
        let narrow = Schema::uniform(2, 0, 99);
        let sub = Subscription::whole_space(&wide);
        let mut w = ByteWriter::new();
        w.subscription(&sub);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            r.subscription(&narrow),
            Err(CodecError::Model(ModelError::SchemaMismatch { .. }))
        ));
    }

    #[test]
    fn out_of_domain_range_is_a_model_error() {
        let schema = Schema::uniform(1, 0, 9);
        let mut w = ByteWriter::new();
        w.u32(1);
        w.i64(0);
        w.i64(50); // outside the [0, 9] domain
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.subscription(&schema), Err(CodecError::Model(_))));
    }

    #[test]
    fn corrupt_schema_count_rejected_without_allocation() {
        let mut w = ByteWriter::new();
        w.u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.schema(), Err(CodecError::Invalid(_))));
    }
}
