//! A compact binary codec for model objects, used by durable storage and
//! the negotiated binary wire protocol.
//!
//! The JSON codec in [`crate::wire`] is the *default network*
//! representation: self-describing, human-inspectable, and framed by
//! newlines. Durable storage (the service layer's write-ahead log and
//! snapshots) and the hot publish path want the opposite trade-off —
//! dense, fixed-layout, and cheap to decode. Because the build
//! environment vendors serde as a no-op stand-in, this codec is
//! hand-rolled in the same spirit as `wire`: a small writer/reader pair
//! over little-endian primitives plus encode/decode helpers for the model
//! types that storage and the wire persist.
//!
//! ## Encoding rules
//!
//! - All integers are **little-endian** and fixed-width (`u8`, `u32`,
//!   `u64`, `i64`); no varints, so offsets are predictable and decoding
//!   never loops per byte.
//! - Strings are a `u32` byte length followed by UTF-8 bytes.
//! - A [`Subscription`] is its range columns: `u32` arity, then one
//!   `(i64 lo, i64 hi)` pair per attribute in schema order. Decoding
//!   validates against the [`Schema`], so a log written under a different
//!   schema surfaces as a typed error, not garbage data.
//! - A [`Schema`] is a `u32` attribute count, then `(name, i64 lo,
//!   i64 hi)` per attribute.
//!
//! ## Framing
//!
//! The binary *wire* protocol frames values as a `u32` little-endian
//! payload length followed by the payload ([`write_frame`] on the encode
//! side, [`BinaryFramer`] on the decode side — the incremental
//! counterpart to [`crate::wire::LineFramer`], tolerant of arbitrary
//! read fragmentation and bounded while mid-frame). Checksums and magic
//! numbers for *files* remain the storage layer's concern; the one magic
//! sequence defined here is [`BINARY_PREAMBLE`], the connect-time
//! protocol-negotiation tag.
//!
//! # Example
//! ```
//! use psc_model::codec::{ByteReader, ByteWriter};
//! use psc_model::{Schema, Subscription};
//!
//! let schema = Schema::uniform(2, 0, 99);
//! let sub = Subscription::builder(&schema).range("x0", 5, 20).build().unwrap();
//!
//! let mut w = ByteWriter::new();
//! w.subscription(&sub);
//! let bytes = w.into_bytes();
//!
//! let mut r = ByteReader::new(&bytes);
//! let back = r.subscription(&schema).unwrap();
//! assert_eq!(back, sub);
//! assert!(r.is_empty());
//! ```

use crate::{ModelError, Range, Schema, Subscription};
use std::collections::VecDeque;
use std::fmt;

/// Connect-time tag a client sends to negotiate the binary protocol.
///
/// The first byte (`0xB5`) can never begin a JSON request line (JSON text
/// is ASCII/UTF-8 starting with `{`, a digit, or similar), so a server
/// can sniff the very first byte of a connection: `0xB5` commits the
/// connection to binary framing, anything else falls back to
/// line-delimited JSON. The trailing byte is the protocol version.
pub const BINARY_PREAMBLE: [u8; 5] = [0xB5, b'P', b'S', b'C', 1];

/// Appends one byte to `out`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Appends a `u32`, little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64`, little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `i64`, little-endian.
pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a string as `u32` length + UTF-8 bytes.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Appends an opaque byte blob as `u32` length + raw bytes — the
/// non-UTF-8 sibling of [`put_str`], used by the federation layer to
/// ship write-ahead-log segment and manifest bytes verbatim.
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

/// Appends a subscription as `u32` arity + `(lo, hi)` per attribute.
pub fn put_subscription(out: &mut Vec<u8>, sub: &Subscription) {
    put_u32(out, sub.arity() as u32);
    for r in sub.ranges() {
        put_i64(out, r.lo());
        put_i64(out, r.hi());
    }
}

/// Appends a schema as `u32` count + `(name, lo, hi)` per attribute.
pub fn put_schema(out: &mut Vec<u8>, schema: &Schema) {
    put_u32(out, schema.len() as u32);
    for (_, attr) in schema.iter() {
        put_str(out, attr.name());
        put_i64(out, attr.domain().lo());
        put_i64(out, attr.domain().hi());
    }
}

/// Appends one length-prefixed frame to `out`: reserves the 4-byte `u32`
/// header, runs `payload` to append the body, then backfills the header
/// with the body's length. Writing straight into the caller's buffer
/// means encoding a frame costs zero intermediate allocations.
pub fn write_frame<F: FnOnce(&mut Vec<u8>)>(out: &mut Vec<u8>, payload: F) {
    let at = out.len();
    out.extend_from_slice(&[0u8; 4]);
    payload(out);
    let len = (out.len() - at - 4) as u32;
    out[at..at + 4].copy_from_slice(&len.to_le_bytes());
}

/// Error raised while decoding binary payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum CodecError {
    /// The payload ended before the value was complete.
    UnexpectedEof {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes left in the payload.
        remaining: usize,
    },
    /// A decoded field is structurally invalid (bad UTF-8, absurd length).
    Invalid(&'static str),
    /// The decoded value failed model validation (wrong arity, range
    /// outside the schema's domain).
    Model(ModelError),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof { needed, remaining } => {
                write!(
                    f,
                    "payload truncated: needed {needed} bytes, {remaining} remaining"
                )
            }
            CodecError::Invalid(what) => write!(f, "invalid field: {what}"),
            CodecError::Model(e) => write!(f, "model validation failed: {e}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<ModelError> for CodecError {
    fn from(e: ModelError) -> Self {
        CodecError::Model(e)
    }
}

/// Appends little-endian binary encodings to a growable buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// A writer with `capacity` bytes pre-allocated.
    pub fn with_capacity(capacity: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// The bytes written so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning its buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        put_u8(&mut self.buf, v);
    }

    /// Writes a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        put_u32(&mut self.buf, v);
    }

    /// Writes a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        put_u64(&mut self.buf, v);
    }

    /// Writes an `i64`, little-endian.
    pub fn i64(&mut self, v: i64) {
        put_i64(&mut self.buf, v);
    }

    /// Writes a string as `u32` length + UTF-8 bytes.
    pub fn str(&mut self, s: &str) {
        put_str(&mut self.buf, s);
    }

    /// Writes a subscription as `u32` arity + `(lo, hi)` per attribute.
    pub fn subscription(&mut self, sub: &Subscription) {
        put_subscription(&mut self.buf, sub);
    }

    /// Writes a schema as `u32` count + `(name, lo, hi)` per attribute.
    pub fn schema(&mut self, schema: &Schema) {
        put_schema(&mut self.buf, schema);
    }
}

/// Reads little-endian binary encodings from a byte slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `bytes`, positioned at the start.
    pub fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32`, little-endian.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a `u64`, little-endian.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads an `i64`, little-endian.
    pub fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a string written by [`ByteWriter::str`].
    pub fn str(&mut self) -> Result<String, CodecError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::Invalid("string is not UTF-8"))
    }

    /// Reads a byte blob written by [`put_bytes`]. The declared length
    /// is checked against the remaining payload before allocating, so a
    /// corrupt header cannot trigger a huge allocation.
    pub fn byte_vec(&mut self) -> Result<Vec<u8>, CodecError> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    /// Reads a subscription written by [`ByteWriter::subscription`],
    /// validating it against `schema`.
    pub fn subscription(&mut self, schema: &Schema) -> Result<Subscription, CodecError> {
        let arity = self.u32()? as usize;
        if arity != schema.len() {
            return Err(CodecError::Model(ModelError::SchemaMismatch {
                expected: schema.len(),
                found: arity,
            }));
        }
        let mut ranges = Vec::with_capacity(arity);
        for _ in 0..arity {
            let lo = self.i64()?;
            let hi = self.i64()?;
            ranges.push(Range::new(lo, hi)?);
        }
        Ok(Subscription::from_ranges(schema, ranges)?)
    }

    /// Reads a schema written by [`ByteWriter::schema`].
    pub fn schema(&mut self) -> Result<Schema, CodecError> {
        let count = self.u32()? as usize;
        // A schema attribute costs at least 20 encoded bytes (length,
        // name, two endpoints); reject counts the payload cannot hold so
        // a corrupt length cannot trigger a huge allocation.
        if count > self.remaining() / 20 {
            return Err(CodecError::Invalid("schema attribute count too large"));
        }
        let mut builder = Schema::builder();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..count {
            let name = self.str()?;
            let lo = self.i64()?;
            let hi = self.i64()?;
            if lo > hi {
                return Err(CodecError::Invalid("schema attribute domain inverted"));
            }
            if !seen.insert(name.clone()) {
                return Err(CodecError::Invalid("duplicate schema attribute name"));
            }
            builder = builder.attribute(name, lo, hi);
        }
        Ok(builder.build())
    }
}

/// One unit produced by [`BinaryFramer::next_frame`].
#[derive(Debug, PartialEq, Eq)]
pub enum BinFrame<'a> {
    /// A complete frame payload, borrowed from the framer's buffer —
    /// valid until the next `feed`/`next_frame` call, so decode before
    /// pulling the next frame. Borrowing (instead of handing out an
    /// owned `Vec`) is what keeps the hot decode path allocation-free.
    Frame(&'a [u8]),
    /// A frame whose header declared more than `max_frame_bytes` of
    /// payload. The frame's bytes are discarded (the stream resyncs at
    /// the next frame boundary); `len` is the declared payload length.
    TooLong {
        /// Payload length the oversized header declared.
        len: usize,
    },
}

/// Scan state: one scanned-and-classified frame in [`BinaryFramer::buf`].
#[derive(Debug)]
enum ScanEvent {
    /// Complete frame: payload at `buf[offset..offset + len]`.
    Frame { offset: usize, len: usize },
    /// Oversized frame; bytes already discarded, only the event remains.
    TooLong { len: usize },
}

/// Incrementally reassembles length-prefixed binary frames from a TCP
/// byte stream — the binary counterpart to [`crate::wire::LineFramer`].
///
/// Feed raw reads in with [`feed`](Self::feed); pull zero or more
/// [`BinFrame`]s out with [`next_frame`](Self::next_frame). A frame split
/// across arbitrarily many reads reassembles identically. The cap is
/// enforced *mid-stream*: an oversized frame's payload is discarded as it
/// arrives rather than buffered, so a hostile or confused peer cannot
/// make the framer hold more than `max_frame_bytes + 4` bytes for the
/// frame currently being assembled. (Complete frames awaiting
/// [`next_frame`](Self::next_frame) stay buffered until drained, exactly
/// like `LineFramer`'s ready queue — callers drain between reads.)
///
/// There is no EOF hook: a frame left incomplete when the peer closes is
/// truncation and is silently dropped, unlike `LineFramer` where a final
/// unterminated line is still meaningful text.
#[derive(Debug)]
pub struct BinaryFramer {
    max_frame_bytes: usize,
    /// Frame bytes: `[start..]` holds scanned-but-undrained frames, then
    /// the partial tail beginning at `tail`.
    buf: Vec<u8>,
    /// Consumption point: bytes before `start` were handed out already.
    start: usize,
    /// Scan point: bytes from `tail` on are not yet classified.
    tail: usize,
    /// Bytes of an oversized frame's payload still to discard from
    /// future `feed` input before resyncing at the next frame header.
    skip: usize,
    /// Scanned frames awaiting `next_frame`, in stream order.
    events: VecDeque<ScanEvent>,
}

impl BinaryFramer {
    /// A framer that discards frames whose payload exceeds
    /// `max_frame_bytes`.
    pub fn new(max_frame_bytes: usize) -> Self {
        BinaryFramer {
            max_frame_bytes,
            buf: Vec::new(),
            start: 0,
            tail: 0,
            skip: 0,
            events: VecDeque::new(),
        }
    }

    /// Bytes currently buffered (scanned frames awaiting drain plus the
    /// partial tail).
    pub fn buffered_bytes(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Whether at least one frame (or oversize notice) is ready.
    pub fn has_frames(&self) -> bool {
        !self.events.is_empty()
    }

    /// Absorbs `bytes` from the stream, scanning complete frames out.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Discard the remainder of an oversized frame first.
        let mut bytes = bytes;
        if self.skip > 0 {
            let discard = self.skip.min(bytes.len());
            self.skip -= discard;
            bytes = &bytes[discard..];
            if bytes.is_empty() {
                return;
            }
        }
        self.compact();
        self.buf.extend_from_slice(bytes);
        self.scan();
    }

    /// Pops the next frame in stream order, if one is complete.
    pub fn next_frame(&mut self) -> Option<BinFrame<'_>> {
        match self.events.pop_front()? {
            ScanEvent::TooLong { len } => Some(BinFrame::TooLong { len }),
            ScanEvent::Frame { offset, len } => {
                self.start = offset + len;
                Some(BinFrame::Frame(&self.buf[offset..offset + len]))
            }
        }
    }

    /// Drops already-consumed bytes so the buffer cannot grow without
    /// bound across feeds. Offsets held by pending events shift with the
    /// data; in the common drained-empty case this is an O(1) clear.
    fn compact(&mut self) {
        if self.start == 0 {
            return;
        }
        if self.start == self.buf.len() {
            self.buf.clear();
        } else {
            self.buf.drain(..self.start);
        }
        self.tail -= self.start;
        for event in &mut self.events {
            if let ScanEvent::Frame { offset, .. } = event {
                *offset -= self.start;
            }
        }
        self.start = 0;
    }

    /// Classifies complete frames from `tail` forward, discarding
    /// oversized payload bytes in place.
    fn scan(&mut self) {
        loop {
            let available = self.buf.len() - self.tail;
            if available < 4 {
                return;
            }
            let header: [u8; 4] = self.buf[self.tail..self.tail + 4]
                .try_into()
                .expect("4 bytes");
            let len = u32::from_le_bytes(header) as usize;
            if len > self.max_frame_bytes {
                // Drop the header and whatever payload already arrived;
                // remember how much of the payload is still in flight.
                let arrived = available - 4;
                self.events.push_back(ScanEvent::TooLong { len });
                if arrived < len {
                    // Everything past the header belongs to the frame.
                    self.buf.truncate(self.tail);
                    self.skip = len - arrived;
                    return;
                }
                // Whole frame (and possibly more) already arrived: carve
                // out just this frame's bytes and keep scanning.
                self.buf.drain(self.tail..self.tail + 4 + len);
                continue;
            }
            if available - 4 < len {
                return;
            }
            self.events.push_back(ScanEvent::Frame {
                offset: self.tail + 4,
                len,
            });
            self.tail += 4 + len;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX);
        w.i64(i64::MIN);
        w.str("bID");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.i64().unwrap(), i64::MIN);
        assert_eq!(r.str().unwrap(), "bID");
        assert!(r.is_empty());
    }

    #[test]
    fn byte_blobs_round_trip_and_guard_length() {
        let mut out = Vec::new();
        put_bytes(&mut out, &[0xB5, 0x00, 0xFF]);
        put_bytes(&mut out, &[]);
        let mut r = ByteReader::new(&out);
        assert_eq!(r.byte_vec().unwrap(), vec![0xB5, 0x00, 0xFF]);
        assert_eq!(r.byte_vec().unwrap(), Vec::<u8>::new());
        assert!(r.is_empty());

        // A length header larger than the remaining payload must error
        // before allocating, not read out of bounds.
        let mut corrupt = Vec::new();
        put_u32(&mut corrupt, 1_000_000);
        corrupt.push(0xAA);
        let mut r = ByteReader::new(&corrupt);
        assert!(matches!(
            r.byte_vec(),
            Err(CodecError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn subscription_round_trips() {
        let schema = Schema::uniform(3, -50, 50);
        let sub = Subscription::builder(&schema)
            .range("x0", -10, 10)
            .point("x1", 5)
            .range("x2", -50, 50)
            .build()
            .unwrap();
        let mut w = ByteWriter::new();
        w.subscription(&sub);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.subscription(&schema).unwrap(), sub);
        assert!(r.is_empty());
    }

    #[test]
    fn schema_round_trips() {
        let schema = Schema::builder()
            .attribute("bID", 0, 10_000)
            .attribute("size", 10, 30)
            .build();
        let mut w = ByteWriter::new();
        w.schema(&schema);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = r.schema().unwrap();
        assert!(back.same_shape(&schema));
        assert_eq!(back.attribute(crate::AttrId(0)).name(), "bID");
        assert!(r.is_empty());
    }

    #[test]
    fn truncated_payloads_report_eof() {
        let schema = Schema::uniform(2, 0, 99);
        let sub = Subscription::builder(&schema)
            .range("x0", 1, 2)
            .build()
            .unwrap();
        let mut w = ByteWriter::new();
        w.subscription(&sub);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(
                matches!(
                    r.subscription(&schema),
                    Err(CodecError::UnexpectedEof { .. })
                ),
                "cut at {cut} must report EOF"
            );
        }
    }

    #[test]
    fn arity_mismatch_is_a_model_error() {
        let wide = Schema::uniform(3, 0, 99);
        let narrow = Schema::uniform(2, 0, 99);
        let sub = Subscription::whole_space(&wide);
        let mut w = ByteWriter::new();
        w.subscription(&sub);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            r.subscription(&narrow),
            Err(CodecError::Model(ModelError::SchemaMismatch { .. }))
        ));
    }

    #[test]
    fn out_of_domain_range_is_a_model_error() {
        let schema = Schema::uniform(1, 0, 9);
        let mut w = ByteWriter::new();
        w.u32(1);
        w.i64(0);
        w.i64(50); // outside the [0, 9] domain
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.subscription(&schema), Err(CodecError::Model(_))));
    }

    #[test]
    fn corrupt_schema_count_rejected_without_allocation() {
        let mut w = ByteWriter::new();
        w.u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.schema(), Err(CodecError::Invalid(_))));
    }

    #[test]
    fn write_frame_backfills_length_header() {
        let mut out = Vec::new();
        write_frame(&mut out, |p| p.extend_from_slice(b"hello"));
        write_frame(&mut out, |_| {});
        assert_eq!(&out[..4], &5u32.to_le_bytes());
        assert_eq!(&out[4..9], b"hello");
        assert_eq!(&out[9..13], &0u32.to_le_bytes());
        assert_eq!(out.len(), 13);
    }

    /// Drains every ready frame, cloning payloads out for comparison.
    fn drain(framer: &mut BinaryFramer) -> Vec<Result<Vec<u8>, usize>> {
        let mut frames = Vec::new();
        while let Some(frame) = framer.next_frame() {
            frames.push(match frame {
                BinFrame::Frame(payload) => Ok(payload.to_vec()),
                BinFrame::TooLong { len } => Err(len),
            });
        }
        frames
    }

    #[test]
    fn framer_reassembles_byte_by_byte() {
        let mut stream = Vec::new();
        write_frame(&mut stream, |p| p.extend_from_slice(b"one"));
        write_frame(&mut stream, |_| {});
        write_frame(&mut stream, |p| p.extend_from_slice(b"three"));
        let mut framer = BinaryFramer::new(64);
        let mut got = Vec::new();
        for &b in &stream {
            framer.feed(&[b]);
            got.extend(drain(&mut framer));
        }
        assert_eq!(
            got,
            vec![Ok(b"one".to_vec()), Ok(vec![]), Ok(b"three".to_vec())]
        );
        assert_eq!(framer.buffered_bytes(), 0);
    }

    #[test]
    fn framer_handles_many_frames_in_one_read() {
        let mut stream = Vec::new();
        for i in 0..10u8 {
            write_frame(&mut stream, |p| p.push(i));
        }
        let mut framer = BinaryFramer::new(64);
        framer.feed(&stream);
        let got = drain(&mut framer);
        assert_eq!(got.len(), 10);
        for (i, frame) in got.iter().enumerate() {
            assert_eq!(frame, &Ok(vec![i as u8]));
        }
    }

    #[test]
    fn oversized_frame_discarded_and_stream_resyncs() {
        let mut stream = Vec::new();
        write_frame(&mut stream, |p| p.extend_from_slice(b"ok1"));
        write_frame(&mut stream, |p| p.extend_from_slice(&[0xAA; 100]));
        write_frame(&mut stream, |p| p.extend_from_slice(b"ok2"));
        // Feed in small chunks so the oversized payload spans reads.
        let mut framer = BinaryFramer::new(16);
        let mut got = Vec::new();
        for chunk in stream.chunks(7) {
            framer.feed(chunk);
            assert!(
                framer.buffered_bytes() <= 16 + 4,
                "mid-stream bound violated at {} bytes",
                framer.buffered_bytes()
            );
            got.extend(drain(&mut framer));
        }
        assert_eq!(
            got,
            vec![Ok(b"ok1".to_vec()), Err(100), Ok(b"ok2".to_vec())]
        );
    }

    #[test]
    fn oversized_frame_followed_by_good_frame_in_one_read() {
        let mut stream = Vec::new();
        write_frame(&mut stream, |p| p.extend_from_slice(&[0xBB; 40]));
        write_frame(&mut stream, |p| p.extend_from_slice(b"after"));
        let mut framer = BinaryFramer::new(8);
        framer.feed(&stream);
        assert_eq!(
            drain(&mut framer),
            vec![Err(40), Ok(b"after".to_vec())],
            "bytes after a fully-arrived oversized frame must survive"
        );
    }

    #[test]
    fn incomplete_frame_is_not_delivered() {
        let mut stream = Vec::new();
        write_frame(&mut stream, |p| p.extend_from_slice(b"pending"));
        let mut framer = BinaryFramer::new(64);
        framer.feed(&stream[..stream.len() - 1]);
        assert!(framer.next_frame().is_none());
        assert!(!framer.has_frames());
        framer.feed(&stream[stream.len() - 1..]);
        assert_eq!(drain(&mut framer), vec![Ok(b"pending".to_vec())]);
    }

    #[test]
    fn framer_buffer_reclaimed_after_drain() {
        let mut stream = Vec::new();
        write_frame(&mut stream, |p| p.extend_from_slice(&[1; 32]));
        let mut framer = BinaryFramer::new(64);
        for _ in 0..100 {
            framer.feed(&stream);
            assert_eq!(drain(&mut framer).len(), 1);
        }
        // Each feed compacts the fully-drained buffer, so repeated
        // request/response cycles do not accumulate bytes.
        framer.feed(&[]);
        assert_eq!(framer.buffered_bytes(), 0);
    }
}
