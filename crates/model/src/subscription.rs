//! Subscriptions: conjunctions of range predicates, i.e. hyper-rectangles.

use crate::{AttrId, LogVolume, ModelError, Publication, Range, Schema};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier assigned to subscriptions by stores, brokers and experiments.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct SubscriptionId(pub u64);

impl fmt::Display for SubscriptionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A subscription: one closed integer range per schema attribute.
///
/// This is Definition 1 of the paper specialized to range predicates: each
/// attribute `x_j` carries a lower and an upper bound, so a subscription over
/// `m` attributes has `r = 2m` simple predicates. Attributes a subscriber does
/// not care about use the attribute's full domain (the paper's `(-∞, +∞)`
/// convention).
///
/// Geometrically a subscription is an axis-aligned hyper-rectangle; a set of
/// subscriptions is a union of such rectangles; the general subsumption
/// problem asks whether one rectangle is contained in that union.
///
/// # Example
/// ```
/// use psc_model::{Schema, Subscription};
/// let schema = Schema::uniform(2, 800, 1100);
/// // Subscription s from Table 3 of the paper.
/// let s = Subscription::builder(&schema)
///     .range("x0", 830, 870)
///     .range("x1", 1003, 1006)
///     .build()
///     .unwrap();
/// assert_eq!(s.size().to_f64() as u64, 41 * 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Subscription {
    schema: Schema,
    ranges: Vec<Range>,
}

impl std::hash::Hash for Subscription {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Schemas are not hashable (interned maps inside); hashing the ranges
        // is sufficient because equal subscriptions have equal ranges.
        self.ranges.hash(state);
    }
}

impl Subscription {
    /// Starts building a subscription over `schema`. Unmentioned attributes
    /// default to the full domain.
    pub fn builder(schema: &Schema) -> SubscriptionBuilder {
        SubscriptionBuilder {
            schema: schema.clone(),
            ranges: schema.iter().map(|(_, a)| *a.domain()).collect(),
            touched: vec![false; schema.len()],
            error: None,
        }
    }

    /// Builds a subscription directly from per-attribute ranges in schema
    /// order.
    ///
    /// # Errors
    /// Returns [`ModelError::SchemaMismatch`] if the number of ranges differs
    /// from the schema's attribute count, and [`ModelError::OutOfDomain`] if a
    /// range exceeds its attribute's domain.
    pub fn from_ranges(schema: &Schema, ranges: Vec<Range>) -> Result<Self, ModelError> {
        if ranges.len() != schema.len() {
            return Err(ModelError::SchemaMismatch {
                expected: schema.len(),
                found: ranges.len(),
            });
        }
        for (id, attr) in schema.iter() {
            let r = &ranges[id.0];
            let dom = attr.domain();
            if !dom.contains_range(r) {
                let value = if r.lo() < dom.lo() { r.lo() } else { r.hi() };
                return Err(ModelError::OutOfDomain {
                    attribute: attr.name().to_string(),
                    value,
                });
            }
        }
        Ok(Subscription {
            schema: schema.clone(),
            ranges,
        })
    }

    /// The subscription covering the entire space (all full domains).
    pub fn whole_space(schema: &Schema) -> Self {
        Subscription {
            schema: schema.clone(),
            ranges: schema.iter().map(|(_, a)| *a.domain()).collect(),
        }
    }

    /// The schema this subscription lives in.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of attributes (`m`).
    pub fn arity(&self) -> usize {
        self.ranges.len()
    }

    /// The range on attribute `attr`.
    ///
    /// # Panics
    /// Panics if `attr` is out of bounds for the schema.
    pub fn range(&self, attr: AttrId) -> &Range {
        &self.ranges[attr.0]
    }

    /// All ranges in schema order.
    pub fn ranges(&self) -> &[Range] {
        &self.ranges
    }

    /// Returns a copy with the range on `attr` replaced.
    ///
    /// # Errors
    /// Returns [`ModelError::OutOfDomain`] if `r` exceeds the attribute domain,
    /// or [`ModelError::AttributeOutOfBounds`] for a bad id.
    pub fn with_range(&self, attr: AttrId, r: Range) -> Result<Self, ModelError> {
        self.schema.check_attr(attr)?;
        let dom = self.schema.domain(attr);
        if !dom.contains_range(&r) {
            let attribute = self.schema.attribute(attr).name().to_string();
            let value = if r.lo() < dom.lo() { r.lo() } else { r.hi() };
            return Err(ModelError::OutOfDomain { attribute, value });
        }
        let mut out = self.clone();
        out.ranges[attr.0] = r;
        Ok(out)
    }

    /// Whether the publication point lies inside this rectangle.
    pub fn matches(&self, p: &Publication) -> bool {
        debug_assert_eq!(p.values().len(), self.ranges.len());
        self.ranges
            .iter()
            .zip(p.values())
            .all(|(r, &v)| r.contains(v))
    }

    /// Whether the integer point (given in schema order) lies inside.
    pub fn contains_point(&self, point: &[i64]) -> bool {
        debug_assert_eq!(point.len(), self.ranges.len());
        self.ranges.iter().zip(point).all(|(r, &v)| r.contains(v))
    }

    /// Whether `self ⊇ other`: every range of `self` contains the matching
    /// range of `other`. This is *pairwise* coverage — the relation classical
    /// covering-based routing uses.
    pub fn covers(&self, other: &Subscription) -> bool {
        debug_assert_eq!(self.arity(), other.arity());
        self.ranges
            .iter()
            .zip(&other.ranges)
            .all(|(a, b)| a.contains_range(b))
    }

    /// Whether the rectangles share at least one point.
    pub fn intersects(&self, other: &Subscription) -> bool {
        debug_assert_eq!(self.arity(), other.arity());
        self.ranges
            .iter()
            .zip(&other.ranges)
            .all(|(a, b)| a.intersects(b))
    }

    /// Intersection rectangle, or `None` if disjoint.
    pub fn intersection(&self, other: &Subscription) -> Option<Subscription> {
        debug_assert_eq!(self.arity(), other.arity());
        let mut ranges = Vec::with_capacity(self.ranges.len());
        for (a, b) in self.ranges.iter().zip(&other.ranges) {
            ranges.push(a.intersection(b)?);
        }
        Some(Subscription {
            schema: self.schema.clone(),
            ranges,
        })
    }

    /// `I(s)`: the number of integer points inside, exact while it fits
    /// `u128`.
    ///
    /// Returns `None` on overflow; use [`Subscription::size`] for the
    /// always-available log-space value.
    pub fn size_exact(&self) -> Option<u128> {
        let mut acc: u128 = 1;
        for r in &self.ranges {
            acc = acc.checked_mul(r.count())?;
        }
        Some(acc)
    }

    /// `I(s)` in log-space (never overflows).
    pub fn size(&self) -> LogVolume {
        let mut v = LogVolume::ONE;
        for r in &self.ranges {
            v += LogVolume::from_count(r.count());
        }
        v
    }

    /// Fraction of the whole schema space occupied by this subscription.
    pub fn density(&self) -> f64 {
        self.size()
            .ratio(&Subscription::whole_space(&self.schema).size())
    }
}

impl fmt::Display for Subscription {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, (id, attr)) in self.schema.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            let r = &self.ranges[id.0];
            if r == attr.domain() {
                write!(f, "{}: *", attr.name())?;
            } else {
                write!(f, "{}: {}", attr.name(), r)?;
            }
        }
        write!(f, "]")
    }
}

/// Builder returned by [`Subscription::builder`].
///
/// Errors are deferred to [`SubscriptionBuilder::build`] so call chains stay
/// ergonomic.
#[derive(Debug)]
pub struct SubscriptionBuilder {
    schema: Schema,
    ranges: Vec<Range>,
    touched: Vec<bool>,
    error: Option<ModelError>,
}

impl SubscriptionBuilder {
    /// Constrains attribute `name` to `[lo, hi]`.
    pub fn range(mut self, name: &str, lo: i64, hi: i64) -> Self {
        self.apply(name, lo, hi);
        self
    }

    /// Constrains attribute `name` to the single value `v`.
    pub fn point(self, name: &str, v: i64) -> Self {
        self.range(name, v, v)
    }

    /// Constrains attribute `id` (by index) to `[lo, hi]`.
    pub fn range_id(mut self, id: AttrId, lo: i64, hi: i64) -> Self {
        if self.error.is_some() {
            return self;
        }
        match self.schema.get(id) {
            None => {
                self.error = Some(ModelError::AttributeOutOfBounds {
                    index: id.0,
                    len: self.schema.len(),
                });
            }
            Some(attr) => {
                let name = attr.name().to_string();
                self.constrain(id, &name, lo, hi);
            }
        }
        self
    }

    fn apply(&mut self, name: &str, lo: i64, hi: i64) {
        if self.error.is_some() {
            return;
        }
        match self.schema.attr_id(name) {
            None => self.error = Some(ModelError::UnknownAttribute(name.to_string())),
            Some(id) => self.constrain(id, name, lo, hi),
        }
    }

    fn constrain(&mut self, id: AttrId, name: &str, lo: i64, hi: i64) {
        if self.touched[id.0] {
            self.error = Some(ModelError::DuplicateConstraint(name.to_string()));
            return;
        }
        let r = match Range::new(lo, hi) {
            Ok(r) => r,
            Err(e) => {
                self.error = Some(e);
                return;
            }
        };
        let dom = self.schema.domain(id);
        match r.clamp_to(dom) {
            None => {
                self.error = Some(ModelError::OutOfDomain {
                    attribute: name.to_string(),
                    value: lo,
                });
            }
            Some(clamped) => {
                self.ranges[id.0] = clamped;
                self.touched[id.0] = true;
            }
        }
    }

    /// Finalizes the subscription.
    ///
    /// # Errors
    /// Returns the first error recorded while chaining constraints:
    /// unknown/duplicate attributes, inverted ranges, or ranges fully outside
    /// their domain. Ranges partially outside the domain are clamped.
    pub fn build(self) -> Result<Subscription, ModelError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        Ok(Subscription {
            schema: self.schema,
            ranges: self.ranges,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Publication;
    use proptest::prelude::*;

    fn schema2() -> Schema {
        // Matches Figure 2 of the paper: x1 ∈ [800, 900], x2 ∈ [1000, 1010].
        Schema::builder()
            .attribute("x1", 800, 900)
            .attribute("x2", 1000, 1010)
            .build()
    }

    fn sub(schema: &Schema, x1: (i64, i64), x2: (i64, i64)) -> Subscription {
        Subscription::builder(schema)
            .range("x1", x1.0, x1.1)
            .range("x2", x2.0, x2.1)
            .build()
            .unwrap()
    }

    #[test]
    fn table3_subscriptions_intersect_but_do_not_cover_pairwise() {
        let schema = schema2();
        let s = sub(&schema, (830, 870), (1003, 1006));
        let s1 = sub(&schema, (820, 850), (1001, 1007));
        let s2 = sub(&schema, (840, 880), (1002, 1009));
        assert!(!s1.covers(&s));
        assert!(!s2.covers(&s));
        assert!(s1.intersects(&s));
        assert!(s2.intersects(&s));
        assert!(s1.intersects(&s2));
    }

    #[test]
    fn covers_is_reflexive_and_antisymmetric_on_distinct() {
        let schema = schema2();
        let a = sub(&schema, (820, 850), (1001, 1007));
        let b = sub(&schema, (830, 840), (1002, 1006));
        assert!(a.covers(&a));
        assert!(a.covers(&b));
        assert!(!b.covers(&a));
    }

    #[test]
    fn unconstrained_attributes_default_to_domain() {
        let schema = schema2();
        let s = Subscription::builder(&schema)
            .range("x1", 810, 820)
            .build()
            .unwrap();
        assert_eq!(s.range(AttrId(1)), &Range::new(1000, 1010).unwrap());
        assert!(s.to_string().contains("x2: *"));
    }

    #[test]
    fn builder_detects_unknown_and_duplicate() {
        let schema = schema2();
        let err = Subscription::builder(&schema)
            .range("bogus", 0, 1)
            .build()
            .unwrap_err();
        assert_eq!(err, ModelError::UnknownAttribute("bogus".into()));
        let err = Subscription::builder(&schema)
            .range("x1", 810, 820)
            .range("x1", 830, 840)
            .build()
            .unwrap_err();
        assert_eq!(err, ModelError::DuplicateConstraint("x1".into()));
    }

    #[test]
    fn builder_clamps_partial_overflow_and_rejects_disjoint() {
        let schema = schema2();
        let s = Subscription::builder(&schema)
            .range("x1", 700, 850)
            .build()
            .unwrap();
        assert_eq!(s.range(AttrId(0)), &Range::new(800, 850).unwrap());
        let err = Subscription::builder(&schema)
            .range("x1", 0, 10)
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::OutOfDomain { .. }));
    }

    #[test]
    fn from_ranges_validates_arity_and_domain() {
        let schema = schema2();
        let err = Subscription::from_ranges(&schema, vec![Range::point(800)]).unwrap_err();
        assert_eq!(
            err,
            ModelError::SchemaMismatch {
                expected: 2,
                found: 1
            }
        );
        let err = Subscription::from_ranges(
            &schema,
            vec![Range::new(700, 850).unwrap(), Range::point(1005)],
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::OutOfDomain { .. }));
    }

    #[test]
    fn size_exact_and_log_space_agree() {
        let schema = schema2();
        let s = sub(&schema, (830, 870), (1003, 1006));
        assert_eq!(s.size_exact(), Some(41 * 4));
        assert!((s.size().to_f64() - 164.0).abs() < 1e-6);
    }

    #[test]
    fn size_exact_overflow_returns_none() {
        let schema = Schema::uniform(3, i64::MIN, i64::MAX);
        let s = Subscription::whole_space(&schema);
        assert_eq!(s.size_exact(), None);
        // Log-space still fine: log10((2^64)^3) ≈ 57.8.
        assert!((s.size().log10() - 57.79).abs() < 0.1);
    }

    #[test]
    fn matches_publication() {
        let schema = schema2();
        let s = sub(&schema, (830, 870), (1003, 1006));
        let inside = Publication::builder(&schema)
            .set("x1", 850)
            .set("x2", 1004)
            .build()
            .unwrap();
        let outside = Publication::builder(&schema)
            .set("x1", 829)
            .set("x2", 1004)
            .build()
            .unwrap();
        assert!(s.matches(&inside));
        assert!(!s.matches(&outside));
    }

    #[test]
    fn intersection_none_when_disjoint_on_any_attribute() {
        let schema = schema2();
        let a = sub(&schema, (800, 820), (1000, 1004));
        let b = sub(&schema, (821, 840), (1000, 1004));
        assert!(a.intersection(&b).is_none());
        let c = sub(&schema, (810, 830), (1005, 1010));
        assert!(a.intersection(&c).is_none()); // overlaps x1 but not x2
    }

    #[test]
    fn density_of_whole_space_is_one() {
        let schema = schema2();
        let s = Subscription::whole_space(&schema);
        assert!((s.density() - 1.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_covers_iff_intersection_equals_inner(
            a in sub_strategy(), b in sub_strategy()
        ) {
            let cov = a.covers(&b);
            let via_intersection = a.intersection(&b).as_ref() == Some(&b);
            prop_assert_eq!(cov, via_intersection);
        }

        #[test]
        fn prop_intersection_commutative(a in sub_strategy(), b in sub_strategy()) {
            prop_assert_eq!(a.intersection(&b), b.intersection(&a));
        }

        #[test]
        fn prop_cover_transitive(a in sub_strategy(), b in sub_strategy(), c in sub_strategy()) {
            if a.covers(&b) && b.covers(&c) {
                prop_assert!(a.covers(&c));
            }
        }

        #[test]
        fn prop_size_matches_enumeration(s in sub_strategy()) {
            // Brute-force count on the small 2-D test domain.
            let mut n: u128 = 0;
            for x in s.range(AttrId(0)).lo()..=s.range(AttrId(0)).hi() {
                for y in s.range(AttrId(1)).lo()..=s.range(AttrId(1)).hi() {
                    assert!(s.contains_point(&[x, y]));
                    n += 1;
                }
            }
            prop_assert_eq!(s.size_exact(), Some(n));
        }
    }

    fn sub_strategy() -> impl Strategy<Value = Subscription> {
        (800i64..=895, 0i64..=20, 1000i64..=1008, 0i64..=5).prop_map(|(x_lo, xw, y_lo, yw)| {
            let schema = schema2();
            Subscription::builder(&schema)
                .range("x1", x_lo, (x_lo + xw).min(900))
                .range("x2", y_lo, (y_lo + yw).min(1010))
                .build()
                .unwrap()
        })
    }
}
