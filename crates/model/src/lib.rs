//! # psc-model
//!
//! Data model for content-based publish/subscribe subsumption checking, as
//! defined in *"Efficient Probabilistic Subsumption Checking for Content-based
//! Publish/Subscribe Systems"* (Ouksel, Jurca, Podnar, Aberer — Middleware 2006).
//!
//! A **subscription** is a conjunction of simple range predicates over a finite
//! set of integer-valued attributes — geometrically an axis-aligned
//! hyper-rectangle in an `m`-dimensional discrete space. A **publication** is a
//! point in the same space (or, for imprecise data sources, a small rectangle).
//!
//! The model deliberately uses *closed integer ranges*: the paper assumes
//! attribute values are "elements from (ordered) finite sets", which makes
//! witness counting (`I(s)`, the number of integer points inside a
//! subscription) exact.
//!
//! Two serialization surfaces live here so every layer above shares one
//! source of truth: [`wire`] (line-delimited JSON DTOs + incremental
//! framing, the default network representation) and [`codec`] (dense
//! little-endian binary with length-prefixed framing, used by the service
//! layer's write-ahead log, snapshots, and the negotiated binary wire
//! protocol).
//!
//! ## Example
//!
//! ```
//! use psc_model::{Schema, Subscription, Publication};
//!
//! // The bike-rental schema from Table 1 of the paper.
//! let schema = Schema::builder()
//!     .attribute("bID", 0, 10_000)
//!     .attribute("size", 10, 30)
//!     .attribute("brand", 0, 50)
//!     .attribute("rpID", 0, 1_000)
//!     .attribute("date", 0, 1_000_000)
//!     .build();
//!
//! let s1 = Subscription::builder(&schema)
//!     .range("bID", 1000, 1999)
//!     .point("size", 19)
//!     .point("brand", 7)
//!     .range("rpID", 820, 840)
//!     .range("date", 57_600, 72_000)
//!     .build()
//!     .unwrap();
//!
//! let p1 = Publication::builder(&schema)
//!     .set("bID", 1036)
//!     .set("size", 19)
//!     .set("brand", 7)
//!     .set("rpID", 825)
//!     .set("date", 66_185)
//!     .build()
//!     .unwrap();
//!
//! assert!(s1.matches(&p1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod catalog;
pub mod codec;
mod error;
pub mod expand;
mod inline_vec;
mod publication;
mod range;
mod schema;
mod subscription;
mod volume;
pub mod wire;

pub use error::ModelError;
pub use inline_vec::InlineVec;
pub use publication::{Publication, PublicationBuilder, PublicationId, ValueVec};
pub use range::Range;
pub use schema::{AttrId, Attribute, Schema, SchemaBuilder};
pub use subscription::{Subscription, SubscriptionBuilder, SubscriptionId};
pub use volume::LogVolume;
