//! Closed integer ranges — the building block of predicates and rectangles.

use crate::ModelError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A closed integer interval `[lo, hi]` with `lo <= hi`.
///
/// Ranges model one attribute's constraint inside a subscription: the simple
/// predicate pair `x >= lo AND x <= hi` from Definition 1 of the paper. The
/// discrete-point count [`Range::count`] is the 1-D factor of a subscription's
/// size `I(s)` used by the witness-probability estimate (Algorithm 2).
///
/// # Example
/// ```
/// use psc_model::Range;
/// let r = Range::new(830, 870).unwrap();
/// assert_eq!(r.count(), 41);
/// assert!(r.contains(830) && r.contains(870) && !r.contains(871));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Range {
    lo: i64,
    hi: i64,
}

impl Range {
    /// Creates the range `[lo, hi]`.
    ///
    /// # Errors
    /// Returns [`ModelError::EmptyRange`] if `lo > hi`.
    pub fn new(lo: i64, hi: i64) -> Result<Self, ModelError> {
        if lo > hi {
            Err(ModelError::EmptyRange { lo, hi })
        } else {
            Ok(Range { lo, hi })
        }
    }

    /// Creates the degenerate range `[v, v]` containing a single point.
    pub fn point(v: i64) -> Self {
        Range { lo: v, hi: v }
    }

    /// Lower bound (inclusive).
    pub fn lo(&self) -> i64 {
        self.lo
    }

    /// Upper bound (inclusive).
    pub fn hi(&self) -> i64 {
        self.hi
    }

    /// Number of integer points in the range (`hi - lo + 1`).
    ///
    /// Computed in `u128` so that extreme domains (e.g. `[i64::MIN, i64::MAX]`)
    /// do not overflow.
    pub fn count(&self) -> u128 {
        (self.hi as i128 - self.lo as i128 + 1) as u128
    }

    /// Natural logarithm of [`Range::count`], used for log-space volumes.
    pub fn ln_count(&self) -> f64 {
        (self.count() as f64).ln()
    }

    /// Whether `v` lies inside the range.
    pub fn contains(&self, v: i64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Whether `self` contains `other` entirely (`self ⊇ other`).
    pub fn contains_range(&self, other: &Range) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Whether `self` contains `other` with strict slack on *both* sides.
    ///
    /// Used by Corollary 2: a conflict-table row is all-defined exactly when
    /// the tested subscription strictly contains the row's subscription on
    /// every attribute.
    pub fn strictly_contains_range(&self, other: &Range) -> bool {
        self.lo < other.lo && other.hi < self.hi
    }

    /// Whether the two ranges share at least one point.
    pub fn intersects(&self, other: &Range) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// Intersection of the two ranges, or `None` when disjoint.
    pub fn intersection(&self, other: &Range) -> Option<Range> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo <= hi {
            Some(Range { lo, hi })
        } else {
            None
        }
    }

    /// The part of `self` strictly below `v`, i.e. `self ∩ (-∞, v-1]`.
    ///
    /// This is the satisfiable region of `self ∧ ¬(x ≥ v)` — the negation of a
    /// lower-bound simple predicate on an integer domain.
    pub fn below(&self, v: i64) -> Option<Range> {
        if self.lo >= v {
            return None;
        }
        Some(Range {
            lo: self.lo,
            hi: self.hi.min(v - 1),
        })
    }

    /// The part of `self` strictly above `v`, i.e. `self ∩ [v+1, +∞)`.
    ///
    /// This is the satisfiable region of `self ∧ ¬(x ≤ v)` — the negation of an
    /// upper-bound simple predicate on an integer domain.
    pub fn above(&self, v: i64) -> Option<Range> {
        if self.hi <= v {
            return None;
        }
        Some(Range {
            lo: self.lo.max(v + 1),
            hi: self.hi,
        })
    }

    /// Width of the range as a fraction of `domain`'s width.
    ///
    /// Useful when reasoning about gap sizes ("0.5% of the interval") in the
    /// extreme non-cover scenario.
    pub fn fraction_of(&self, domain: &Range) -> f64 {
        self.count() as f64 / domain.count() as f64
    }

    /// Clamps the range to fit inside `domain`; `None` if they are disjoint.
    pub fn clamp_to(&self, domain: &Range) -> Option<Range> {
        self.intersection(domain)
    }
}

impl fmt::Display for Range {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.lo == self.hi {
            write!(f, "{{{}}}", self.lo)
        } else {
            write!(f, "[{}, {}]", self.lo, self.hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn new_rejects_inverted_bounds() {
        assert_eq!(
            Range::new(3, 2),
            Err(ModelError::EmptyRange { lo: 3, hi: 2 })
        );
    }

    #[test]
    fn point_has_count_one() {
        let r = Range::point(42);
        assert_eq!(r.count(), 1);
        assert!(r.contains(42));
        assert!(!r.contains(41));
    }

    #[test]
    fn count_is_inclusive() {
        assert_eq!(Range::new(0, 9).unwrap().count(), 10);
        assert_eq!(Range::new(-5, 5).unwrap().count(), 11);
    }

    #[test]
    fn count_handles_extreme_domain() {
        let r = Range::new(i64::MIN, i64::MAX).unwrap();
        assert_eq!(r.count(), u128::from(u64::MAX) + 1);
    }

    #[test]
    fn intersection_basic() {
        let a = Range::new(0, 10).unwrap();
        let b = Range::new(5, 15).unwrap();
        assert_eq!(a.intersection(&b), Some(Range::new(5, 10).unwrap()));
        let c = Range::new(11, 20).unwrap();
        assert_eq!(a.intersection(&c), None);
        // Touching at a single point intersects on integer domains.
        let d = Range::new(10, 20).unwrap();
        assert_eq!(a.intersection(&d), Some(Range::point(10)));
    }

    #[test]
    fn below_above_follow_integer_negation() {
        let s = Range::new(830, 870).unwrap();
        // ¬(x ≥ 820): x ≤ 819 — no part of s is below 820.
        assert_eq!(s.below(820), None);
        // ¬(x ≤ 850): x ≥ 851 — the strip [851, 870].
        assert_eq!(s.above(850), Some(Range::new(851, 870).unwrap()));
        // ¬(x ≥ 840): x ≤ 839 — the strip [830, 839].
        assert_eq!(s.below(840), Some(Range::new(830, 839).unwrap()));
        // ¬(x ≤ 880): x ≥ 881 — empty.
        assert_eq!(s.above(880), None);
    }

    #[test]
    fn below_above_boundary_cases() {
        let s = Range::new(10, 20).unwrap();
        // v equal to lo: nothing strictly below within s.
        assert_eq!(s.below(10), None);
        // v just above lo: single point.
        assert_eq!(s.below(11), Some(Range::point(10)));
        // v equal to hi: nothing strictly above within s.
        assert_eq!(s.above(20), None);
        // v just below hi: single point.
        assert_eq!(s.above(19), Some(Range::point(20)));
        // v far outside.
        assert_eq!(s.below(1000), Some(s));
        assert_eq!(s.above(-1000), Some(s));
    }

    #[test]
    fn strict_containment() {
        let outer = Range::new(0, 100).unwrap();
        let inner = Range::new(1, 99).unwrap();
        assert!(outer.strictly_contains_range(&inner));
        assert!(!outer.strictly_contains_range(&outer));
        assert!(!inner.strictly_contains_range(&outer));
        let touching = Range::new(0, 50).unwrap();
        assert!(outer.contains_range(&touching));
        assert!(!outer.strictly_contains_range(&touching));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Range::new(1, 5).unwrap().to_string(), "[1, 5]");
        assert_eq!(Range::point(7).to_string(), "{7}");
    }

    #[test]
    fn fraction_of_domain() {
        let domain = Range::new(0, 999).unwrap();
        let slice = Range::new(0, 9).unwrap();
        assert!((slice.fraction_of(&domain) - 0.01).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_intersection_symmetric(a_lo in -1000i64..1000, a_w in 0i64..500,
                                       b_lo in -1000i64..1000, b_w in 0i64..500) {
            let a = Range::new(a_lo, a_lo + a_w).unwrap();
            let b = Range::new(b_lo, b_lo + b_w).unwrap();
            prop_assert_eq!(a.intersection(&b), b.intersection(&a));
            prop_assert_eq!(a.intersects(&b), a.intersection(&b).is_some());
        }

        #[test]
        fn prop_intersection_contained_in_both(a_lo in -1000i64..1000, a_w in 0i64..500,
                                               b_lo in -1000i64..1000, b_w in 0i64..500) {
            let a = Range::new(a_lo, a_lo + a_w).unwrap();
            let b = Range::new(b_lo, b_lo + b_w).unwrap();
            if let Some(i) = a.intersection(&b) {
                prop_assert!(a.contains_range(&i));
                prop_assert!(b.contains_range(&i));
            }
        }

        #[test]
        fn prop_below_above_partition(lo in -1000i64..1000, w in 0i64..500, v in -1200i64..1200) {
            let s = Range::new(lo, lo + w).unwrap();
            // below(v), [v,v]∩s, above(v) partition s.
            let below = s.below(v).map_or(0, |r| r.count());
            let above = s.above(v).map_or(0, |r| r.count());
            let at = u128::from(s.contains(v));
            prop_assert_eq!(below + at + above, s.count());
        }

        #[test]
        fn prop_contains_range_iff_all_points(lo in -50i64..50, w in 0i64..20,
                                              lo2 in -50i64..50, w2 in 0i64..20) {
            let a = Range::new(lo, lo + w).unwrap();
            let b = Range::new(lo2, lo2 + w2).unwrap();
            let all_in = (b.lo()..=b.hi()).all(|v| a.contains(v));
            prop_assert_eq!(a.contains_range(&b), all_in);
        }
    }
}
