//! Attribute schemas: the named, bounded dimensions of the subscription space.

use crate::{ModelError, Range};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Index of an attribute within a [`Schema`].
///
/// A cheap, copyable handle. Attribute `j` of the paper's notation (`x_j`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AttrId(pub usize);

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A named attribute with a finite integer domain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attribute {
    name: String,
    domain: Range,
}

impl Attribute {
    /// Creates an attribute with the given name and domain.
    pub fn new(name: impl Into<String>, domain: Range) -> Self {
        Attribute {
            name: name.into(),
            domain,
        }
    }

    /// The attribute's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The attribute's full domain.
    pub fn domain(&self) -> &Range {
        &self.domain
    }
}

/// An ordered collection of attributes defining the subscription space.
///
/// The schema fixes `m` (the number of distinct attributes — see Table 4 of the
/// paper) and each attribute's domain. Subscriptions leave an attribute
/// unconstrained by using the full domain, matching the paper's convention
/// that bounds `(-∞, +∞)` mean "not significant for this subscription".
///
/// Schemas are cheaply cloneable (`Arc` inside) so every subscription can
/// carry one without duplication.
///
/// # Example
/// ```
/// use psc_model::Schema;
/// let schema = Schema::builder()
///     .attribute("x1", 800, 900)
///     .attribute("x2", 1000, 1010)
///     .build();
/// assert_eq!(schema.len(), 2);
/// assert_eq!(schema.attr_id("x2").unwrap().0, 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    inner: Arc<SchemaInner>,
}

#[derive(Debug, PartialEq, Eq, Serialize, Deserialize)]
struct SchemaInner {
    attributes: Vec<Attribute>,
    by_name: HashMap<String, usize>,
}

impl Schema {
    /// Starts building a schema.
    pub fn builder() -> SchemaBuilder {
        SchemaBuilder {
            attributes: Vec::new(),
        }
    }

    /// Builds a uniform schema of `m` attributes named `x0..x{m-1}`, all with
    /// domain `[lo, hi]`. This is the shape used throughout the paper's
    /// evaluation (Section 6), where all subscriptions constrain the same `m`
    /// attributes.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn uniform(m: usize, lo: i64, hi: i64) -> Self {
        let domain = Range::new(lo, hi).expect("uniform schema domain must be non-empty");
        let attributes = (0..m)
            .map(|j| Attribute::new(format!("x{j}"), domain))
            .collect::<Vec<_>>();
        Self::from_attributes(attributes)
    }

    fn from_attributes(attributes: Vec<Attribute>) -> Self {
        let by_name = attributes
            .iter()
            .enumerate()
            .map(|(i, a)| (a.name.clone(), i))
            .collect();
        Schema {
            inner: Arc::new(SchemaInner {
                attributes,
                by_name,
            }),
        }
    }

    /// Number of attributes (`m`).
    pub fn len(&self) -> usize {
        self.inner.attributes.len()
    }

    /// Whether the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.inner.attributes.is_empty()
    }

    /// The attribute at `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of bounds; use [`Schema::get`] for a fallible
    /// lookup.
    pub fn attribute(&self, id: AttrId) -> &Attribute {
        &self.inner.attributes[id.0]
    }

    /// Fallible lookup of the attribute at `id`.
    pub fn get(&self, id: AttrId) -> Option<&Attribute> {
        self.inner.attributes.get(id.0)
    }

    /// Looks up an attribute id by name.
    pub fn attr_id(&self, name: &str) -> Option<AttrId> {
        self.inner.by_name.get(name).copied().map(AttrId)
    }

    /// Iterates over `(AttrId, &Attribute)` pairs in schema order.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &Attribute)> {
        self.inner
            .attributes
            .iter()
            .enumerate()
            .map(|(i, a)| (AttrId(i), a))
    }

    /// The domain of attribute `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of bounds.
    pub fn domain(&self, id: AttrId) -> &Range {
        self.attribute(id).domain()
    }

    /// Validates that `id` belongs to this schema.
    ///
    /// # Errors
    /// Returns [`ModelError::AttributeOutOfBounds`] when it does not.
    pub fn check_attr(&self, id: AttrId) -> Result<(), ModelError> {
        if id.0 < self.len() {
            Ok(())
        } else {
            Err(ModelError::AttributeOutOfBounds {
                index: id.0,
                len: self.len(),
            })
        }
    }

    /// Whether two schemas have identical shape (used to validate that
    /// subscriptions being compared live in the same space).
    pub fn same_shape(&self, other: &Schema) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner) || self.inner == other.inner
    }
}

/// Incremental builder for [`Schema`].
#[derive(Debug, Default)]
pub struct SchemaBuilder {
    attributes: Vec<Attribute>,
}

impl SchemaBuilder {
    /// Adds an attribute with domain `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi` — schema construction is programmer-driven, so an
    /// inverted domain is a logic error, not an input error.
    pub fn attribute(mut self, name: impl Into<String>, lo: i64, hi: i64) -> Self {
        let domain = Range::new(lo, hi).expect("attribute domain must be non-empty");
        self.attributes.push(Attribute::new(name, domain));
        self
    }

    /// Finalizes the schema.
    ///
    /// # Panics
    /// Panics if two attributes share a name.
    pub fn build(self) -> Schema {
        let mut seen = HashMap::new();
        for (i, a) in self.attributes.iter().enumerate() {
            if seen.insert(a.name.clone(), i).is_some() {
                panic!("duplicate attribute name `{}`", a.name);
            }
        }
        Schema::from_attributes(self.attributes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_schema_shape() {
        let s = Schema::uniform(5, 0, 99);
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
        for (id, attr) in s.iter() {
            assert_eq!(attr.name(), format!("x{}", id.0));
            assert_eq!(attr.domain(), &Range::new(0, 99).unwrap());
        }
    }

    #[test]
    fn name_lookup() {
        let s = Schema::builder()
            .attribute("price", 0, 1000)
            .attribute("qty", 1, 64)
            .build();
        assert_eq!(s.attr_id("price"), Some(AttrId(0)));
        assert_eq!(s.attr_id("qty"), Some(AttrId(1)));
        assert_eq!(s.attr_id("missing"), None);
    }

    #[test]
    fn check_attr_bounds() {
        let s = Schema::uniform(3, 0, 9);
        assert!(s.check_attr(AttrId(2)).is_ok());
        assert_eq!(
            s.check_attr(AttrId(3)),
            Err(ModelError::AttributeOutOfBounds { index: 3, len: 3 })
        );
    }

    #[test]
    #[should_panic(expected = "duplicate attribute name")]
    fn duplicate_names_panic() {
        let _ = Schema::builder()
            .attribute("a", 0, 1)
            .attribute("a", 0, 1)
            .build();
    }

    #[test]
    fn same_shape_for_clones_and_equal_schemas() {
        let a = Schema::uniform(4, 0, 9);
        let b = a.clone();
        assert!(a.same_shape(&b));
        let c = Schema::uniform(4, 0, 9);
        assert!(a.same_shape(&c));
        let d = Schema::uniform(5, 0, 9);
        assert!(!a.same_shape(&d));
    }

    #[test]
    fn attr_id_display() {
        assert_eq!(AttrId(3).to_string(), "x3");
    }
}
