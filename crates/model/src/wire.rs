//! Wire DTOs and a minimal JSON codec for the service layer.
//!
//! The serving subsystem (`psc-service`) speaks a line-delimited JSON
//! protocol over TCP. Because the build environment vendors serde as a
//! no-op stand-in (see `vendor/serde`), the encoding here is hand-rolled:
//! [`Json`] is a small self-contained JSON value type with a recursive
//! descent parser and a compact serializer, and the DTO types map model
//! objects onto stable wire shapes:
//!
//! - [`SubscriptionDto`] — `{"id": 7, "ranges": [[lo, hi], ...]}`;
//! - [`PublicationDto`] — `{"values": [v0, v1, ...]}`;
//! - [`SchemaDto`] — `[["name", lo, hi], ...]`;
//! - [`SummaryStats`] — per-shard routing-summary counters flattened into
//!   `stats` shard objects (`summary_epoch` / `summary_rebuilds` /
//!   `summary_staleness` / `summary_intervals` / `summary_age_secs`);
//! - [`PlacementStats`] — router-level subscription-placement counters
//!   flattened into the top of a `stats` response (`placement_enabled` /
//!   `directory_entries` / `placement_moves`);
//! - [`FederationStats`] — federated-broker counters under the `stats`
//!   response's decode-optional `federation` key (`peers_connected` /
//!   `subs_forwarded` / `subs_suppressed` / `segments_shipped` / …;
//!   absent entirely when talking to a non-federated node);
//! - [`LatencyStats`] / [`StageLatency`] — per-stage latency quantile
//!   summaries under the `stats` response's decode-optional `latency` key
//!   (nanosecond units; absent when talking to a pre-telemetry peer).
//!
//! Transport framing is incremental: [`LineFramer`] turns arbitrary byte
//! chunks (as delivered by non-blocking socket reads) into newline-framed
//! lines, enforcing a per-line byte cap *mid-stream* so an unterminated
//! hostile line can never buffer unbounded memory. The nesting-depth cap
//! lives in [`Json::parse`], which runs on every completed frame.
//!
//! Numbers are kept as `i64` where the model is integral (attribute values,
//! range endpoints) and as `u64` for subscription ids, so round-trips are
//! exact; floats appear only in metrics payloads.

use crate::{ModelError, Publication, Range, Schema, Subscription, SubscriptionId};
use std::collections::VecDeque;
use std::fmt;

/// Error raised while decoding wire payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// The payload is not syntactically valid JSON.
    Syntax {
        /// Byte offset of the failure.
        at: usize,
        /// What the parser expected.
        expected: &'static str,
    },
    /// The payload is valid JSON but not the expected shape.
    Shape(String),
    /// The decoded object failed model validation.
    Model(ModelError),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Syntax { at, expected } => {
                write!(f, "invalid JSON at byte {at}: expected {expected}")
            }
            WireError::Shape(msg) => write!(f, "unexpected payload shape: {msg}"),
            WireError::Model(e) => write!(f, "model validation failed: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<ModelError> for WireError {
    fn from(e: ModelError) -> Self {
        WireError::Model(e)
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer that fits `i64` (the common case on this wire).
    Int(i64),
    /// An unsigned integer above `i64::MAX` (large subscription ids).
    UInt(u64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document, requiring it to span the whole input.
    pub fn parse(input: &str) -> Result<Json, WireError> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(WireError::Syntax {
                at: pos,
                expected: "end of input",
            });
        }
        Ok(value)
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `i64`, if integral.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::Int(v) => Some(v),
            Json::UInt(v) => i64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as `u64`, if a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Int(v) => u64::try_from(v).ok(),
            Json::UInt(v) => Some(v),
            _ => None,
        }
    }

    /// The value as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(v) => Some(v as f64),
            Json::UInt(v) => Some(v as f64),
            Json::Float(v) => Some(v),
            _ => None,
        }
    }

    /// The value as `&str`, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice, if an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds an array of `u64` ids.
    pub fn id_array(ids: impl IntoIterator<Item = u64>) -> Json {
        Json::Arr(ids.into_iter().map(Json::UInt).collect())
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

/// Maximum nesting depth accepted by the parser. Wire payloads nest three
/// levels at most; the cap exists so a hostile line of `[[[[…` cannot
/// overflow the stack of a server connection thread.
const MAX_DEPTH: usize = 64;

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, WireError> {
    if depth > MAX_DEPTH {
        return Err(WireError::Syntax {
            at: *pos,
            expected: "nesting no deeper than 64",
        });
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(WireError::Syntax {
            at: *pos,
            expected: "a value",
        }),
        Some(b'n') => parse_lit(bytes, pos, b"null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, b"true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, b"false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => {
                        return Err(WireError::Syntax {
                            at: *pos,
                            expected: "',' or ']'",
                        })
                    }
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(WireError::Syntax {
                        at: *pos,
                        expected: "':'",
                    });
                }
                *pos += 1;
                let value = parse_value(bytes, pos, depth + 1)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => {
                        return Err(WireError::Syntax {
                            at: *pos,
                            expected: "',' or '}'",
                        })
                    }
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(
    bytes: &[u8],
    pos: &mut usize,
    lit: &'static [u8],
    value: Json,
) -> Result<Json, WireError> {
    if bytes[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(WireError::Syntax {
            at: *pos,
            expected: "null/true/false",
        })
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, WireError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(WireError::Syntax {
            at: *pos,
            expected: "'\"'",
        });
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => {
                return Err(WireError::Syntax {
                    at: *pos,
                    expected: "closing '\"'",
                })
            }
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes.get(*pos).ok_or(WireError::Syntax {
                    at: *pos,
                    expected: "escape character",
                })?;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = bytes.get(*pos + 1..*pos + 5).ok_or(WireError::Syntax {
                            at: *pos,
                            expected: "4 hex digits",
                        })?;
                        let hex = std::str::from_utf8(hex).map_err(|_| WireError::Syntax {
                            at: *pos,
                            expected: "hex digits",
                        })?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| WireError::Syntax {
                            at: *pos,
                            expected: "hex digits",
                        })?;
                        // Surrogate pairs are not needed on this wire; map
                        // lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => {
                        return Err(WireError::Syntax {
                            at: *pos,
                            expected: "valid escape",
                        })
                    }
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is safe).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && bytes[*pos] & 0xC0 == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).expect("valid UTF-8"));
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, WireError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ASCII number");
    if *pos == start {
        return Err(WireError::Syntax {
            at: start,
            expected: "a number",
        });
    }
    if !is_float {
        if let Ok(v) = text.parse::<i64>() {
            return Ok(Json::Int(v));
        }
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::UInt(v));
        }
    }
    text.parse::<f64>()
        .map(Json::Float)
        .map_err(|_| WireError::Syntax {
            at: start,
            expected: "a number",
        })
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(v) => write!(f, "{v}"),
            Json::UInt(v) => write!(f, "{v}"),
            Json::Float(v) => {
                if v.is_finite() {
                    write!(f, "{v}")
                } else {
                    f.write_str("null")
                }
            }
            Json::Str(s) => {
                let mut buf = String::with_capacity(s.len() + 2);
                escape_into(&mut buf, s);
                f.write_str(&buf)
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut buf = String::with_capacity(k.len() + 2);
                    escape_into(&mut buf, k);
                    f.write_str(&buf)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// One framing unit produced by a [`LineFramer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A complete line (newline stripped, trailing `\r` removed).
    Line(String),
    /// A line that exceeded the framer's byte cap and was discarded.
    TooLong {
        /// Total length of the discarded line, in bytes (excluding the
        /// terminating newline).
        len: usize,
    },
}

/// Incremental newline framing with a mid-stream length cap.
///
/// The readiness-based server front-end reads whatever bytes the socket
/// has — a read may carry half a request, or twenty — so framing cannot
/// assume line boundaries align with reads. `feed` accepts arbitrary byte
/// chunks and [`next_frame`](LineFramer::next_frame) yields completed
/// lines in order.
///
/// The length cap is enforced *as bytes arrive*, not when the line
/// completes: once an unterminated line crosses `max_line` bytes the
/// buffered prefix is dropped immediately and the framer switches to
/// discard mode until the next newline, so a hostile peer streaming an
/// endless unterminated line holds at most `max_line` bytes of memory.
/// The oversized line surfaces as one [`Frame::TooLong`] and framing
/// resumes cleanly on the next line.
///
/// # Example
/// ```
/// use psc_model::wire::{Frame, LineFramer};
///
/// let mut framer = LineFramer::new(1024);
/// framer.feed(b"{\"op\":\"he");          // partial line: no frame yet
/// assert_eq!(framer.next_frame(), None);
/// framer.feed(b"llo\"}\n{\"op\":");      // completes one, starts another
/// assert_eq!(
///     framer.next_frame(),
///     Some(Frame::Line("{\"op\":\"hello\"}".into())),
/// );
/// assert_eq!(framer.next_frame(), None);
/// ```
#[derive(Debug)]
pub struct LineFramer {
    max_line: usize,
    /// The current unterminated line; never grows past `max_line`.
    partial: Vec<u8>,
    /// Completed frames not yet handed out.
    ready: VecDeque<Frame>,
    /// Discarding an oversized line until its newline arrives.
    discarding: bool,
    /// Bytes of the oversized line seen so far.
    discarded: usize,
}

impl LineFramer {
    /// A framer accepting lines of at most `max_line` bytes.
    ///
    /// # Panics
    /// Panics if `max_line` is zero.
    pub fn new(max_line: usize) -> Self {
        assert!(max_line > 0, "a framer needs a positive line cap");
        LineFramer {
            max_line,
            partial: Vec::new(),
            ready: VecDeque::new(),
            discarding: false,
            discarded: 0,
        }
    }

    /// Feeds one chunk of bytes, completing any number of frames.
    pub fn feed(&mut self, mut bytes: &[u8]) {
        while let Some(pos) = bytes.iter().position(|&b| b == b'\n') {
            let head = &bytes[..pos];
            bytes = &bytes[pos + 1..];
            if self.discarding {
                self.discarded = self.discarded.saturating_add(head.len());
                self.ready.push_back(Frame::TooLong {
                    len: self.discarded,
                });
                self.discarding = false;
                self.discarded = 0;
            } else if self.partial.len() + head.len() > self.max_line {
                self.ready.push_back(Frame::TooLong {
                    len: self.partial.len() + head.len(),
                });
                self.partial.clear();
            } else {
                self.partial.extend_from_slice(head);
                while self.partial.last() == Some(&b'\r') {
                    self.partial.pop();
                }
                self.ready.push_back(Frame::Line(
                    String::from_utf8_lossy(&self.partial).into_owned(),
                ));
                self.partial.clear();
            }
        }
        if bytes.is_empty() {
            return;
        }
        if self.discarding {
            self.discarded = self.discarded.saturating_add(bytes.len());
        } else if self.partial.len() + bytes.len() > self.max_line {
            // Cap crossed mid-line: drop the buffered prefix now and keep
            // only a byte count until the newline shows up.
            self.discarded = self.partial.len() + bytes.len();
            self.discarding = true;
            self.partial.clear();
        } else {
            self.partial.extend_from_slice(bytes);
        }
    }

    /// The next completed frame, in feed order.
    pub fn next_frame(&mut self) -> Option<Frame> {
        self.ready.pop_front()
    }

    /// Flushes a trailing unterminated line as a final frame (EOF
    /// semantics: data before a close counts as a last line).
    pub fn finish(&mut self) {
        if self.discarding {
            self.ready.push_back(Frame::TooLong {
                len: self.discarded,
            });
            self.discarding = false;
            self.discarded = 0;
        } else if !self.partial.is_empty() {
            while self.partial.last() == Some(&b'\r') {
                self.partial.pop();
            }
            self.ready.push_back(Frame::Line(
                String::from_utf8_lossy(&self.partial).into_owned(),
            ));
            self.partial.clear();
        }
    }

    /// Bytes currently buffered for the unterminated line. Bounded by the
    /// line cap regardless of what has been fed.
    pub fn buffered_bytes(&self) -> usize {
        self.partial.len()
    }

    /// Whether any completed frame is waiting to be taken.
    pub fn has_frames(&self) -> bool {
        !self.ready.is_empty()
    }
}

/// Wire shape of a subscription: an id plus one `[lo, hi]` pair per
/// attribute, in schema order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubscriptionDto {
    /// The subscriber-assigned id.
    pub id: u64,
    /// Closed ranges, one per schema attribute.
    pub ranges: Vec<(i64, i64)>,
}

impl SubscriptionDto {
    /// Captures a model subscription.
    pub fn from_subscription(id: SubscriptionId, sub: &Subscription) -> Self {
        SubscriptionDto {
            id: id.0,
            ranges: sub.ranges().iter().map(|r| (r.lo(), r.hi())).collect(),
        }
    }

    /// Validates against `schema` and builds the model subscription.
    pub fn into_subscription(
        self,
        schema: &Schema,
    ) -> Result<(SubscriptionId, Subscription), WireError> {
        let ranges = self
            .ranges
            .iter()
            .map(|&(lo, hi)| Range::new(lo, hi))
            .collect::<Result<Vec<_>, _>>()?;
        let sub = Subscription::from_ranges(schema, ranges)?;
        Ok((SubscriptionId(self.id), sub))
    }

    /// Encodes as a JSON value.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("id", Json::UInt(self.id)),
            (
                "ranges",
                Json::Arr(
                    self.ranges
                        .iter()
                        .map(|&(lo, hi)| Json::Arr(vec![Json::Int(lo), Json::Int(hi)]))
                        .collect(),
                ),
            ),
        ])
    }

    /// Decodes from a JSON value.
    pub fn from_json(value: &Json) -> Result<Self, WireError> {
        let id = value
            .get("id")
            .and_then(Json::as_u64)
            .ok_or_else(|| WireError::Shape("subscription needs a numeric \"id\"".into()))?;
        let ranges = value
            .get("ranges")
            .and_then(Json::as_array)
            .ok_or_else(|| WireError::Shape("subscription needs a \"ranges\" array".into()))?
            .iter()
            .map(|pair| {
                let pair = pair
                    .as_array()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| WireError::Shape("each range must be [lo, hi]".into()))?;
                let lo = pair[0]
                    .as_i64()
                    .ok_or_else(|| WireError::Shape("range lo must be an integer".into()))?;
                let hi = pair[1]
                    .as_i64()
                    .ok_or_else(|| WireError::Shape("range hi must be an integer".into()))?;
                Ok((lo, hi))
            })
            .collect::<Result<Vec<_>, WireError>>()?;
        Ok(SubscriptionDto { id, ranges })
    }
}

/// Wire shape of a publication: one value per schema attribute, in schema
/// order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublicationDto {
    /// Attribute values in schema order.
    pub values: Vec<i64>,
}

impl PublicationDto {
    /// Captures a model publication.
    pub fn from_publication(p: &Publication) -> Self {
        PublicationDto {
            values: p.values().to_vec(),
        }
    }

    /// Validates against `schema` and builds the model publication.
    pub fn into_publication(self, schema: &Schema) -> Result<Publication, WireError> {
        Ok(Publication::from_values(schema, self.values)?)
    }

    /// Encodes as a JSON value.
    pub fn to_json(&self) -> Json {
        Json::obj([(
            "values",
            Json::Arr(self.values.iter().map(|&v| Json::Int(v)).collect()),
        )])
    }

    /// Decodes from a JSON value.
    pub fn from_json(value: &Json) -> Result<Self, WireError> {
        let values = value
            .get("values")
            .and_then(Json::as_array)
            .ok_or_else(|| WireError::Shape("publication needs a \"values\" array".into()))?
            .iter()
            .map(|v| {
                v.as_i64()
                    .ok_or_else(|| WireError::Shape("publication values must be integers".into()))
            })
            .collect::<Result<Vec<_>, WireError>>()?;
        Ok(PublicationDto { values })
    }
}

/// Wire shape of a schema: `[["name", lo, hi], ...]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaDto {
    /// `(name, lo, hi)` per attribute.
    pub attributes: Vec<(String, i64, i64)>,
}

impl SchemaDto {
    /// Captures a model schema.
    pub fn from_schema(schema: &Schema) -> Self {
        SchemaDto {
            attributes: schema
                .iter()
                .map(|(_, a)| (a.name().to_string(), a.domain().lo(), a.domain().hi()))
                .collect(),
        }
    }

    /// Validates and builds the model schema.
    ///
    /// Rejects inverted domains and duplicate attribute names instead of
    /// panicking inside the schema builder — this runs on data received
    /// from the network (a `hello` response).
    pub fn into_schema(self) -> Result<Schema, WireError> {
        let mut b = Schema::builder();
        let mut seen = std::collections::HashSet::new();
        for (name, lo, hi) in self.attributes {
            if lo > hi {
                return Err(WireError::Shape(format!(
                    "attribute \"{name}\" has inverted domain [{lo}, {hi}]"
                )));
            }
            if !seen.insert(name.clone()) {
                return Err(WireError::Shape(format!("duplicate attribute \"{name}\"")));
            }
            b = b.attribute(name, lo, hi);
        }
        Ok(b.build())
    }

    /// Encodes as a JSON value.
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.attributes
                .iter()
                .map(|(name, lo, hi)| {
                    Json::Arr(vec![
                        Json::Str(name.clone()),
                        Json::Int(*lo),
                        Json::Int(*hi),
                    ])
                })
                .collect(),
        )
    }

    /// Decodes from a JSON value.
    pub fn from_json(value: &Json) -> Result<Self, WireError> {
        let attributes = value
            .as_array()
            .ok_or_else(|| WireError::Shape("schema must be an array".into()))?
            .iter()
            .map(|attr| {
                let attr = attr.as_array().filter(|a| a.len() == 3).ok_or_else(|| {
                    WireError::Shape("each attribute must be [name, lo, hi]".into())
                })?;
                let name = attr[0]
                    .as_str()
                    .ok_or_else(|| WireError::Shape("attribute name must be a string".into()))?;
                let lo = attr[1]
                    .as_i64()
                    .ok_or_else(|| WireError::Shape("attribute lo must be an integer".into()))?;
                let hi = attr[2]
                    .as_i64()
                    .ok_or_else(|| WireError::Shape("attribute hi must be an integer".into()))?;
                Ok((name.to_string(), lo, hi))
            })
            .collect::<Result<Vec<_>, WireError>>()?;
        Ok(SchemaDto { attributes })
    }
}

/// Wire shape of a shard's routing-summary health, carried inside each
/// shard object of a `stats` response.
///
/// Content-aware routing keeps a conservative attribute-space summary per
/// shard (see `psc_service::routing`); these counters let an operator see
/// how fresh and how well-tightened each shard's summary is:
///
/// - `epoch` — the summary cell's seqlock epoch. It advances by 2 per
///   published snapshot (odd values are transient writer states), so
///   `epoch / 2` counts the snapshots published since boot. Snapshots
///   follow admission batches and unsubscriptions; publication matching
///   never republishes the cell.
/// - `rebuilds` — full rebuilds of the summary from the shard's store:
///   one at recovery, plus one per staleness-triggered re-tightening.
/// - `staleness` — unsubscriptions applied since the last rebuild. The
///   summary stays *conservative* regardless (removals only over-widen
///   it); staleness measures lost pruning power, not lost correctness.
/// - `intervals` — total intervals across the summary's per-attribute
///   multi-interval bounds: its current resolution.
/// - `age_secs` — how long the summary has been loose: seconds since the
///   first unsubscription after the last rebuild, `0.0` while tight.
///
/// On the wire the counters flatten into the shard metrics object as
/// `summary_epoch`, `summary_rebuilds`, `summary_staleness`,
/// `summary_intervals`, and `summary_age_secs`. Decoding tolerates their
/// absence (an older peer) by defaulting to zero.
///
/// # Example
/// ```
/// use psc_model::wire::{Json, SummaryStats};
///
/// let stats = SummaryStats {
///     epoch: 12,
///     rebuilds: 1,
///     staleness: 3,
///     intervals: 40,
///     age_secs: 1.5,
/// };
/// let shard_obj = Json::Obj(stats.to_json_fields());
/// assert_eq!(SummaryStats::from_json(&shard_obj), stats);
/// // Older peers simply omit the keys; decode defaults to zero.
/// assert_eq!(SummaryStats::from_json(&Json::obj([])), SummaryStats::default());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SummaryStats {
    /// Seqlock epoch of the shard's published summary (2 per snapshot).
    pub epoch: u64,
    /// Full summary rebuilds from the store (recovery + re-tightenings).
    pub rebuilds: u64,
    /// Unsubscriptions absorbed since the last rebuild (bounded by the
    /// service's re-tighten knob).
    pub staleness: u64,
    /// Total intervals across the summary's per-attribute bounds.
    pub intervals: u64,
    /// Seconds the summary has been loose (first removal since the last
    /// rebuild); `0.0` while tight.
    pub age_secs: f64,
}

impl SummaryStats {
    /// Encodes as the flat key/value pairs spliced into a shard metrics
    /// object (`summary_epoch`, `summary_rebuilds`, `summary_staleness`,
    /// `summary_intervals`, `summary_age_secs`).
    pub fn to_json_fields(&self) -> Vec<(String, Json)> {
        vec![
            ("summary_epoch".to_string(), Json::UInt(self.epoch)),
            ("summary_rebuilds".to_string(), Json::UInt(self.rebuilds)),
            ("summary_staleness".to_string(), Json::UInt(self.staleness)),
            ("summary_intervals".to_string(), Json::UInt(self.intervals)),
            ("summary_age_secs".to_string(), Json::Float(self.age_secs)),
        ]
    }

    /// Decodes from a shard metrics object, defaulting each missing key to
    /// zero so stats from older peers still parse.
    pub fn from_json(value: &Json) -> Self {
        let field = |key: &str| value.get(key).and_then(Json::as_u64).unwrap_or(0);
        SummaryStats {
            epoch: field("summary_epoch"),
            rebuilds: field("summary_rebuilds"),
            staleness: field("summary_staleness"),
            intervals: field("summary_intervals"),
            age_secs: value
                .get("summary_age_secs")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
        }
    }
}

/// Wire shape of the router's subscription-placement state, carried at
/// the top level of a `stats` response.
///
/// Content-aware placement (see `psc_service::routing::placement`) routes
/// each new subscription to the shard whose summary it would widen least
/// and tracks the id→shard assignment in a placement directory:
///
/// - `enabled` — whether greedy placement is on (`false` means hash
///   placement; the directory is maintained either way).
/// - `directory_entries` — live id→shard entries.
/// - `placement_moves` — subscriptions routed somewhere other than their
///   hash shard (always `0` with placement disabled).
///
/// On the wire the fields flatten into the stats object as
/// `placement_enabled`, `directory_entries`, and `placement_moves`.
/// Decoding tolerates their absence (a pre-placement peer) by defaulting
/// to disabled/zero.
///
/// # Example
/// ```
/// use psc_model::wire::{Json, PlacementStats};
///
/// let stats = PlacementStats { enabled: true, directory_entries: 41, placement_moves: 7 };
/// let obj = Json::Obj(stats.to_json_fields());
/// assert_eq!(PlacementStats::from_json(&obj), stats);
/// // Pre-placement peers simply omit the keys; decode defaults.
/// assert_eq!(PlacementStats::from_json(&Json::obj([])), PlacementStats::default());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlacementStats {
    /// Whether greedy content-aware placement is enabled.
    pub enabled: bool,
    /// Live id→shard entries in the placement directory.
    pub directory_entries: u64,
    /// Subscriptions routed to a shard other than their hash shard.
    pub placement_moves: u64,
}

impl PlacementStats {
    /// Encodes as the flat key/value pairs spliced into a stats object
    /// (`placement_enabled`, `directory_entries`, `placement_moves`).
    pub fn to_json_fields(&self) -> Vec<(String, Json)> {
        vec![
            ("placement_enabled".to_string(), Json::Bool(self.enabled)),
            (
                "directory_entries".to_string(),
                Json::UInt(self.directory_entries),
            ),
            (
                "placement_moves".to_string(),
                Json::UInt(self.placement_moves),
            ),
        ]
    }

    /// Decodes from a stats object, defaulting missing keys so stats from
    /// pre-placement peers still parse.
    pub fn from_json(value: &Json) -> Self {
        let field = |key: &str| value.get(key).and_then(Json::as_u64).unwrap_or(0);
        PlacementStats {
            enabled: value
                .get("placement_enabled")
                .and_then(Json::as_bool)
                .unwrap_or(false),
            directory_entries: field("directory_entries"),
            placement_moves: field("placement_moves"),
        }
    }
}

/// Federated-broker counters riding the `stats` response's
/// decode-optional `federation` key.
///
/// A federated node measures its mesh edges here: how many overlay
/// links are live, how much subscription control traffic the covering
/// policy actually put on the wire versus suppressed, and how much
/// write-ahead-log replication it served. `subs_forwarded +
/// subs_suppressed` counts every forwarding *decision* the node made,
/// so `subs_suppressed / (subs_forwarded + subs_suppressed)` is the
/// control-traffic suppression fraction the paper's subsumption checker
/// buys.
///
/// Version-skew policy matches [`PlacementStats`]: every key decodes
/// optionally (missing ⇒ zero) so stats from an older, pre-federation
/// peer still parse, and the whole object is absent from non-federated
/// nodes.
///
/// # Example
/// ```
/// use psc_model::wire::{FederationStats, Json};
///
/// let stats = FederationStats { peers_connected: 2, subs_forwarded: 9, ..Default::default() };
/// let obj = Json::Obj(stats.to_json_fields());
/// assert_eq!(FederationStats::from_json(&obj), stats);
/// // Pre-federation peers simply omit the keys; decode defaults.
/// assert_eq!(FederationStats::from_json(&Json::obj([])), FederationStats::default());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FederationStats {
    /// Overlay links with a live broker session right now.
    pub peers_connected: u64,
    /// Subscriptions this node forwarded on some uplink.
    pub subs_forwarded: u64,
    /// Subscriptions received from peer brokers (not local clients).
    pub subs_received: u64,
    /// Forwarding decisions suppressed because an already-forwarded
    /// subscription covers the new one.
    pub subs_suppressed: u64,
    /// Retractions sent upstream (unsubscribes and retract-and-replace).
    pub subs_retracted: u64,
    /// Publications forwarded to peer brokers.
    pub remote_publishes: u64,
    /// Rotated write-ahead-log segments fully shipped to followers.
    pub segments_shipped: u64,
}

impl FederationStats {
    /// Encodes as the flat key/value pairs of the stats response's
    /// `federation` object.
    pub fn to_json_fields(&self) -> Vec<(String, Json)> {
        let pairs = [
            ("peers_connected", self.peers_connected),
            ("subs_forwarded", self.subs_forwarded),
            ("subs_received", self.subs_received),
            ("subs_suppressed", self.subs_suppressed),
            ("subs_retracted", self.subs_retracted),
            ("remote_publishes", self.remote_publishes),
            ("segments_shipped", self.segments_shipped),
        ];
        pairs
            .into_iter()
            .map(|(k, v)| (k.to_string(), Json::UInt(v)))
            .collect()
    }

    /// Decodes from a `federation` stats object, defaulting every
    /// missing key to zero so older peers' stats still parse.
    pub fn from_json(value: &Json) -> Self {
        let field = |key: &str| value.get(key).and_then(Json::as_u64).unwrap_or(0);
        FederationStats {
            peers_connected: field("peers_connected"),
            subs_forwarded: field("subs_forwarded"),
            subs_received: field("subs_received"),
            subs_suppressed: field("subs_suppressed"),
            subs_retracted: field("subs_retracted"),
            remote_publishes: field("remote_publishes"),
            segments_shipped: field("segments_shipped"),
        }
    }
}

/// Quantile summary of one pipeline stage's latency histogram, all
/// durations in nanoseconds.
///
/// Quantile semantics follow the histogram they are extracted from
/// (fixed-memory log-bucketed, see the service's telemetry module): each
/// `pXX` value is an upper bound for the exact rank statistic with
/// relative error at most one sub-bucket (~3.1%); `min`/`max`/`mean` are
/// exact. An all-zero summary means the stage recorded no samples.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StageLatency {
    /// Samples recorded into the stage.
    pub count: u64,
    /// Exact smallest sample (0 when empty).
    pub min_ns: u64,
    /// Exact largest sample.
    pub max_ns: u64,
    /// Exact arithmetic mean.
    pub mean_ns: f64,
    /// Median upper bound.
    pub p50_ns: u64,
    /// 90th-percentile upper bound.
    pub p90_ns: u64,
    /// 99th-percentile upper bound.
    pub p99_ns: u64,
    /// 99.9th-percentile upper bound.
    pub p999_ns: u64,
}

impl StageLatency {
    /// Encodes as a JSON object (`{"count":…,"p50":…,…}`; durations keep
    /// their nanosecond unit, keys drop the `_ns` suffix).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::UInt(self.count)),
            ("min", Json::UInt(self.min_ns)),
            ("max", Json::UInt(self.max_ns)),
            ("mean", Json::Float(self.mean_ns)),
            ("p50", Json::UInt(self.p50_ns)),
            ("p90", Json::UInt(self.p90_ns)),
            ("p99", Json::UInt(self.p99_ns)),
            ("p999", Json::UInt(self.p999_ns)),
        ])
    }

    /// Decodes from a JSON object, defaulting missing keys to zero so
    /// stages added later never break older readers.
    pub fn from_json(value: &Json) -> Self {
        let field = |key: &str| value.get(key).and_then(Json::as_u64).unwrap_or(0);
        StageLatency {
            count: field("count"),
            min_ns: field("min"),
            max_ns: field("max"),
            mean_ns: value.get("mean").and_then(Json::as_f64).unwrap_or(0.0),
            p50_ns: field("p50"),
            p90_ns: field("p90"),
            p99_ns: field("p99"),
            p999_ns: field("p999"),
        }
    }
}

/// Per-stage latency summaries carried in the `stats` wire response under
/// the `latency` key — decode-optional like [`SummaryStats`], so stats
/// from pre-telemetry peers (no `latency` key at all) still parse and a
/// reader built before a stage existed just sees it empty.
///
/// # Example
/// ```
/// use psc_model::wire::{Json, LatencyStats, StageLatency};
///
/// let stats = LatencyStats {
///     end_to_end: StageLatency { count: 10, p50_ns: 1_500, ..Default::default() },
///     ..Default::default()
/// };
/// let back = LatencyStats::from_json(&Json::parse(&stats.to_json().to_string()).unwrap());
/// assert_eq!(back, stats);
/// // A pre-telemetry peer's payload decodes to the empty default.
/// assert_eq!(LatencyStats::from_json(&Json::obj([])), LatencyStats::default());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencyStats {
    /// JSON request-line decode (reactor front-end).
    pub decode: StageLatency,
    /// Binary request-frame decode (key `decode_binary`); empty unless
    /// clients negotiated the binary protocol.
    pub decode_binary: StageLatency,
    /// Router summary consult, per shard visit decision.
    pub route: StageLatency,
    /// Per-publication store match on a shard worker (key `match`).
    pub shard_match: StageLatency,
    /// Response encode + enqueue on the connection backlog (key `deliver`).
    pub deliver: StageLatency,
    /// Publish ingress → notification enqueue (key `e2e`).
    pub end_to_end: StageLatency,
}

impl LatencyStats {
    /// Encodes as a JSON object keyed by stage name.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("e2e", self.end_to_end.to_json()),
            ("decode", self.decode.to_json()),
            ("decode_binary", self.decode_binary.to_json()),
            ("route", self.route.to_json()),
            ("match", self.shard_match.to_json()),
            ("deliver", self.deliver.to_json()),
        ])
    }

    /// Decodes from a JSON object, defaulting each absent stage to empty.
    pub fn from_json(value: &Json) -> Self {
        let stage = |key: &str| {
            value
                .get(key)
                .map(StageLatency::from_json)
                .unwrap_or_default()
        };
        LatencyStats {
            decode: stage("decode"),
            decode_binary: stage("decode_binary"),
            route: stage("route"),
            shard_match: stage("match"),
            deliver: stage("deliver"),
            end_to_end: stage("e2e"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::UInt(u64::MAX)
        );
        assert_eq!(Json::parse("1.5").unwrap(), Json::Float(1.5));
        assert_eq!(Json::parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"op":"publish","values":[1,-2,3],"nested":{"x":[]}}"#).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("publish"));
        let values = v.get("values").and_then(Json::as_array).unwrap();
        assert_eq!(values.len(), 3);
        assert_eq!(values[1].as_i64(), Some(-2));
        assert!(v
            .get("nested")
            .unwrap()
            .get("x")
            .unwrap()
            .as_array()
            .unwrap()
            .is_empty());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn display_round_trips() {
        let cases = [
            r#"{"op":"subscribe","id":7,"ranges":[[0,9],[5,5]]}"#,
            r#"[1,2.5,"x",null,true,{"k":"v"}]"#,
            r#""quote \" backslash \\ newline \n""#,
        ];
        for case in cases {
            let parsed = Json::parse(case).unwrap();
            let printed = parsed.to_string();
            assert_eq!(Json::parse(&printed).unwrap(), parsed, "case {case}");
        }
    }

    #[test]
    fn framer_splits_lines_across_feeds() {
        let mut framer = LineFramer::new(64);
        framer.feed(b"abc");
        assert_eq!(framer.next_frame(), None);
        framer.feed(b"def\nsecond");
        assert_eq!(framer.next_frame(), Some(Frame::Line("abcdef".into())));
        assert_eq!(framer.next_frame(), None);
        framer.feed(b"\r\n\n");
        assert_eq!(framer.next_frame(), Some(Frame::Line("second".into())));
        assert_eq!(framer.next_frame(), Some(Frame::Line(String::new())));
        assert_eq!(framer.next_frame(), None);
    }

    #[test]
    fn framer_byte_by_byte_equals_one_shot() {
        let input = b"{\"op\":\"hello\"}\nplain\r\n\nlast";
        let mut whole = LineFramer::new(1024);
        whole.feed(input);
        whole.finish();
        let mut split = LineFramer::new(1024);
        for b in input {
            split.feed(std::slice::from_ref(b));
        }
        split.finish();
        let drain = |f: &mut LineFramer| {
            let mut out = Vec::new();
            while let Some(frame) = f.next_frame() {
                out.push(frame);
            }
            out
        };
        let frames = drain(&mut whole);
        assert_eq!(frames, drain(&mut split));
        assert_eq!(
            frames,
            vec![
                Frame::Line("{\"op\":\"hello\"}".into()),
                Frame::Line("plain".into()),
                Frame::Line(String::new()),
                Frame::Line("last".into()),
            ]
        );
    }

    #[test]
    fn framer_caps_unterminated_lines_mid_stream() {
        let mut framer = LineFramer::new(8);
        // Stream 100 bytes of an unterminated line: memory stays capped.
        for _ in 0..25 {
            framer.feed(b"xxxx");
            assert!(framer.buffered_bytes() <= 8);
        }
        assert_eq!(framer.next_frame(), None, "no frame before the newline");
        framer.feed(b"\nok\n");
        assert_eq!(framer.next_frame(), Some(Frame::TooLong { len: 100 }));
        assert_eq!(
            framer.next_frame(),
            Some(Frame::Line("ok".into())),
            "framing recovers on the next line"
        );
    }

    #[test]
    fn framer_oversized_line_within_one_feed() {
        let mut framer = LineFramer::new(4);
        framer.feed(b"toolong\nok\n");
        assert_eq!(framer.next_frame(), Some(Frame::TooLong { len: 7 }));
        assert_eq!(framer.next_frame(), Some(Frame::Line("ok".into())));
    }

    #[test]
    fn framer_finish_flushes_tail_and_overflow() {
        let mut framer = LineFramer::new(4);
        framer.feed(b"ab");
        framer.finish();
        assert_eq!(framer.next_frame(), Some(Frame::Line("ab".into())));
        let mut framer = LineFramer::new(4);
        framer.feed(b"abcdefgh");
        framer.finish();
        assert_eq!(framer.next_frame(), Some(Frame::TooLong { len: 8 }));
    }

    #[test]
    fn subscription_dto_round_trips() {
        let schema = Schema::uniform(3, 0, 99);
        let sub = Subscription::builder(&schema)
            .range("x0", 5, 20)
            .range("x1", 0, 99)
            .point("x2", 7)
            .build()
            .unwrap();
        let dto = SubscriptionDto::from_subscription(SubscriptionId(41), &sub);
        let json = dto.to_json().to_string();
        let back = SubscriptionDto::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back, dto);
        let (id, rebuilt) = back.into_subscription(&schema).unwrap();
        assert_eq!(id, SubscriptionId(41));
        assert_eq!(rebuilt, sub);
    }

    #[test]
    fn publication_dto_round_trips() {
        let schema = Schema::uniform(2, -50, 49);
        let p = Publication::from_values(&schema, vec![-3, 17]).unwrap();
        let dto = PublicationDto::from_publication(&p);
        let json = dto.to_json().to_string();
        let back = PublicationDto::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back, dto);
        assert_eq!(back.into_publication(&schema).unwrap(), p);
    }

    #[test]
    fn schema_dto_round_trips() {
        let schema = Schema::builder()
            .attribute("bID", 0, 10_000)
            .attribute("size", 10, 30)
            .build();
        let dto = SchemaDto::from_schema(&schema);
        let json = dto.to_json().to_string();
        let back = SchemaDto::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back, dto);
        assert!(back.into_schema().unwrap().same_shape(&schema));
    }

    #[test]
    fn schema_dto_rejects_invalid_schemas() {
        let inverted = SchemaDto {
            attributes: vec![("a".into(), 5, 3)],
        };
        assert!(matches!(inverted.into_schema(), Err(WireError::Shape(_))));
        let duplicate = SchemaDto {
            attributes: vec![("a".into(), 0, 9), ("a".into(), 0, 9)],
        };
        assert!(matches!(duplicate.into_schema(), Err(WireError::Shape(_))));
    }

    #[test]
    fn dto_decode_reports_shape_errors() {
        let bad = Json::parse(r#"{"id":1,"ranges":[[1]]}"#).unwrap();
        assert!(matches!(
            SubscriptionDto::from_json(&bad),
            Err(WireError::Shape(_))
        ));
        let bad = Json::parse(r#"{"values":["x"]}"#).unwrap();
        assert!(matches!(
            PublicationDto::from_json(&bad),
            Err(WireError::Shape(_))
        ));
    }

    #[test]
    fn summary_stats_new_keys_decode_optional_for_version_skew() {
        // A stats payload from a peer built before the multi-interval
        // summaries: it has the original three keys but neither
        // `summary_intervals` nor `summary_age_secs`.
        let old_peer = Json::parse(
            r#"{"summary_epoch":8,"summary_rebuilds":2,"summary_staleness":5,"ingested":100}"#,
        )
        .unwrap();
        let stats = SummaryStats::from_json(&old_peer);
        assert_eq!(stats.epoch, 8);
        assert_eq!(stats.rebuilds, 2);
        assert_eq!(stats.staleness, 5);
        assert_eq!(stats.intervals, 0, "missing new key defaults to 0");
        assert_eq!(stats.age_secs, 0.0, "missing new key defaults to 0.0");

        // A current peer round-trips the new keys exactly.
        let stats = SummaryStats {
            epoch: 4,
            rebuilds: 1,
            staleness: 0,
            intervals: 17,
            age_secs: 2.25,
        };
        let parsed = Json::parse(&Json::Obj(stats.to_json_fields()).to_string()).unwrap();
        assert_eq!(SummaryStats::from_json(&parsed), stats);
    }

    #[test]
    fn placement_stats_decode_optional_for_version_skew() {
        // A stats payload from a pre-placement peer: no placement keys at
        // all. Decode must default to disabled/zero, not fail.
        let old_peer = Json::parse(r#"{"publications_total":42,"shards":[]}"#).unwrap();
        assert_eq!(
            PlacementStats::from_json(&old_peer),
            PlacementStats::default()
        );

        // Current peers round-trip through serialized JSON (exercising
        // the bool encoding, not just the in-memory object).
        for enabled in [false, true] {
            let stats = PlacementStats {
                enabled,
                directory_entries: 1_000,
                placement_moves: 321,
            };
            let parsed = Json::parse(&Json::Obj(stats.to_json_fields()).to_string()).unwrap();
            assert_eq!(PlacementStats::from_json(&parsed), stats);
        }

        // A non-bool `placement_enabled` (hostile or corrupt peer)
        // degrades to disabled rather than erroring.
        let odd = Json::parse(r#"{"placement_enabled":1,"placement_moves":3}"#).unwrap();
        let stats = PlacementStats::from_json(&odd);
        assert!(!stats.enabled);
        assert_eq!(stats.placement_moves, 3);
    }

    #[test]
    fn dto_decode_surfaces_model_errors() {
        let schema = Schema::uniform(1, 0, 9);
        let dto = SubscriptionDto {
            id: 1,
            ranges: vec![(5, 3)],
        };
        assert!(matches!(
            dto.into_subscription(&schema),
            Err(WireError::Model(_))
        ));
        let dto = PublicationDto { values: vec![100] };
        assert!(matches!(
            dto.into_publication(&schema),
            Err(WireError::Model(_))
        ));
    }
}
