//! Mapping symbolic attribute values onto ordinal domains.
//!
//! The paper's data model requires attribute values to be "elements from
//! (ordered) finite sets": a *brand* is an element of an enumeration, a
//! *date* is a point on a discrete timeline, a *bike category* is a range of
//! identifiers (Table 1). This module provides the small amount of
//! machinery a real deployment needs to express such attributes as the
//! integer ranges the subsumption algorithms operate on:
//!
//! - [`Enumeration`] — an interned, ordered set of symbols with stable
//!   ordinals (brand "X" ↦ 7);
//! - [`Timeline`] — a linear time axis with a configurable resolution,
//!   mapping timestamps to ordinals and back (Table 1's ISO date ranges).

use crate::{ModelError, Range};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// An ordered, interned enumeration of symbolic values.
///
/// Ordinals are assigned in insertion order, so range predicates over an
/// enumeration are meaningful exactly when the insertion order is (e.g.
/// severity levels, size ladders); for unordered sets use single-point
/// ranges or the wildcard.
///
/// # Example
/// ```
/// use psc_model::catalog::Enumeration;
/// let mut brands = Enumeration::new("brand");
/// let x = brands.intern("X");
/// let y = brands.intern("Y");
/// assert_eq!(brands.intern("X"), x); // stable
/// assert_eq!(brands.ordinal("Y"), Some(y));
/// assert_eq!(brands.symbol(y), Some("Y"));
/// assert_eq!(brands.domain().unwrap().count(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Enumeration {
    name: String,
    symbols: Vec<String>,
    ordinals: HashMap<String, i64>,
}

impl Enumeration {
    /// Creates an empty enumeration (for error messages, carries a name).
    pub fn new(name: impl Into<String>) -> Self {
        Enumeration {
            name: name.into(),
            symbols: Vec::new(),
            ordinals: HashMap::new(),
        }
    }

    /// Builds from an ordered symbol list.
    ///
    /// # Panics
    /// Panics on duplicate symbols.
    pub fn from_symbols<I, S>(name: impl Into<String>, symbols: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut e = Enumeration::new(name);
        for s in symbols {
            let s = s.into();
            assert!(
                !e.ordinals.contains_key(&s),
                "duplicate symbol `{s}` in enumeration `{}`",
                e.name
            );
            e.intern(s);
        }
        e
    }

    /// The enumeration's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Interns `symbol`, returning its (possibly pre-existing) ordinal.
    pub fn intern(&mut self, symbol: impl Into<String>) -> i64 {
        let symbol = symbol.into();
        if let Some(&o) = self.ordinals.get(&symbol) {
            return o;
        }
        let o = self.symbols.len() as i64;
        self.symbols.push(symbol.clone());
        self.ordinals.insert(symbol, o);
        o
    }

    /// The ordinal of `symbol`, if interned.
    pub fn ordinal(&self, symbol: &str) -> Option<i64> {
        self.ordinals.get(symbol).copied()
    }

    /// The symbol at `ordinal`, if valid.
    pub fn symbol(&self, ordinal: i64) -> Option<&str> {
        usize::try_from(ordinal)
            .ok()
            .and_then(|i| self.symbols.get(i))
            .map(|s| s.as_str())
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Whether no symbols are interned.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// The domain range covering all current ordinals (`None` when empty).
    pub fn domain(&self) -> Option<Range> {
        if self.is_empty() {
            None
        } else {
            Some(Range::new(0, self.symbols.len() as i64 - 1).expect("non-empty"))
        }
    }

    /// A single-symbol predicate range.
    ///
    /// # Errors
    /// [`ModelError::UnknownAttribute`] if the symbol is not interned (reusing
    /// the unknown-name error with the enumeration's name as context).
    pub fn eq_range(&self, symbol: &str) -> Result<Range, ModelError> {
        self.ordinal(symbol)
            .map(Range::point)
            .ok_or_else(|| ModelError::UnknownAttribute(format!("{}::{symbol}", self.name)))
    }

    /// An inclusive range predicate between two interned symbols (in
    /// insertion order).
    ///
    /// # Errors
    /// [`ModelError::UnknownAttribute`] for unknown symbols;
    /// [`ModelError::EmptyRange`] if `from` comes after `to`.
    pub fn between(&self, from: &str, to: &str) -> Result<Range, ModelError> {
        let lo = self
            .ordinal(from)
            .ok_or_else(|| ModelError::UnknownAttribute(format!("{}::{from}", self.name)))?;
        let hi = self
            .ordinal(to)
            .ok_or_else(|| ModelError::UnknownAttribute(format!("{}::{to}", self.name)))?;
        Range::new(lo, hi)
    }
}

/// A discrete timeline: maps `(day, hour, minute)`-style timestamps to
/// ordinals at a fixed resolution in seconds.
///
/// Covers the paper's Table 1/2 date-time attributes without pulling a
/// calendar dependency: days are abstract indices (day 0, day 1, …), which
/// is all range predicates need.
///
/// # Example
/// ```
/// use psc_model::catalog::Timeline;
/// let t = Timeline::with_resolution(60); // minute resolution
/// let fri_16h = t.at(4, 16, 0);
/// let fri_20h = t.at(4, 20, 0);
/// let window = t.window(4, (16, 0), (20, 0)).unwrap();
/// assert_eq!(window.lo(), fri_16h);
/// assert_eq!(window.hi(), fri_20h);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Timeline {
    /// Seconds per ordinal step.
    resolution: u32,
}

impl Timeline {
    /// A timeline with the given resolution in seconds (1 = second-level).
    ///
    /// # Panics
    /// Panics if `resolution` is zero or does not divide a day evenly.
    pub fn with_resolution(resolution: u32) -> Self {
        assert!(resolution > 0, "resolution must be positive");
        assert_eq!(86_400 % resolution, 0, "resolution must divide 86400");
        Timeline { resolution }
    }

    /// Ordinals per day.
    pub fn steps_per_day(&self) -> i64 {
        (86_400 / self.resolution) as i64
    }

    /// The ordinal of day `day` at `hour:minute`.
    ///
    /// # Panics
    /// Panics if `hour > 23` or `minute > 59`.
    pub fn at(&self, day: i64, hour: u32, minute: u32) -> i64 {
        assert!(hour < 24, "hour out of range");
        assert!(minute < 60, "minute out of range");
        let seconds = i64::from(hour) * 3600 + i64::from(minute) * 60;
        day * self.steps_per_day() + seconds / i64::from(self.resolution)
    }

    /// A within-day window `[from, to]` on day `day` (hours and minutes).
    ///
    /// # Errors
    /// [`ModelError::EmptyRange`] when `from` is after `to`.
    pub fn window(&self, day: i64, from: (u32, u32), to: (u32, u32)) -> Result<Range, ModelError> {
        Range::new(self.at(day, from.0, from.1), self.at(day, to.0, to.1))
    }

    /// The full-day range of `day`.
    pub fn day(&self, day: i64) -> Range {
        let lo = day * self.steps_per_day();
        Range::new(lo, lo + self.steps_per_day() - 1).expect("positive steps")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_interning_is_stable() {
        let mut e = Enumeration::new("brand");
        assert!(e.is_empty());
        let x = e.intern("X");
        let y = e.intern("Y");
        assert_eq!((x, y), (0, 1));
        assert_eq!(e.intern("X"), 0);
        assert_eq!(e.len(), 2);
        assert_eq!(e.symbol(1), Some("Y"));
        assert_eq!(e.symbol(5), None);
        assert_eq!(e.symbol(-1), None);
    }

    #[test]
    fn enumeration_ranges() {
        let e = Enumeration::from_symbols("size", ["S", "M", "L", "XL"]);
        assert_eq!(e.eq_range("M").unwrap(), Range::point(1));
        assert_eq!(e.between("M", "XL").unwrap(), Range::new(1, 3).unwrap());
        assert!(e.eq_range("XXL").is_err());
        assert!(e.between("XL", "M").is_err());
        assert_eq!(e.domain().unwrap(), Range::new(0, 3).unwrap());
        assert_eq!(Enumeration::new("empty").domain(), None);
    }

    #[test]
    #[should_panic(expected = "duplicate symbol")]
    fn enumeration_rejects_duplicates() {
        let _ = Enumeration::from_symbols("x", ["a", "a"]);
    }

    #[test]
    fn timeline_minute_resolution() {
        let t = Timeline::with_resolution(60);
        assert_eq!(t.steps_per_day(), 1_440);
        assert_eq!(t.at(0, 0, 0), 0);
        assert_eq!(t.at(0, 12, 30), 750);
        assert_eq!(t.at(2, 0, 1), 2 * 1_440 + 1);
        let w = t.window(1, (12, 0), (14, 0)).unwrap();
        assert_eq!(w.count(), 121);
        let d = t.day(3);
        assert_eq!(d.count(), 1_440);
        assert!(d.contains(t.at(3, 23, 59)));
        assert!(!d.contains(t.at(4, 0, 0)));
    }

    #[test]
    fn timeline_rejects_bad_windows() {
        let t = Timeline::with_resolution(60);
        assert!(t.window(0, (14, 0), (12, 0)).is_err());
    }

    #[test]
    #[should_panic(expected = "resolution must divide")]
    fn timeline_rejects_uneven_resolution() {
        let _ = Timeline::with_resolution(7);
    }

    #[test]
    fn table1_subscription_via_catalog() {
        // Re-express the paper's s1 with symbolic values end to end.
        use crate::{Schema, Subscription};
        let brands = Enumeration::from_symbols("brand", ["W", "X", "Y", "Z"]);
        let t = Timeline::with_resolution(60);
        let schema = Schema::builder()
            .attribute("bID", 0, 10_000)
            .attribute("brand", 0, brands.len() as i64 - 1)
            .attribute("time", 0, t.steps_per_day() * 7 - 1)
            .build();
        let friday = 4;
        let s1 = Subscription::builder(&schema)
            .range("bID", 1000, 1999)
            .range_id(
                schema.attr_id("brand").unwrap(),
                brands.eq_range("X").unwrap().lo(),
                brands.eq_range("X").unwrap().hi(),
            )
            .range_id(
                schema.attr_id("time").unwrap(),
                t.window(friday, (16, 0), (20, 0)).unwrap().lo(),
                t.window(friday, (16, 0), (20, 0)).unwrap().hi(),
            )
            .build()
            .unwrap();
        // A Friday 18:23 brand-X bike in the category matches.
        use crate::Publication;
        let p = Publication::builder(&schema)
            .set("bID", 1036)
            .set("brand", brands.ordinal("X").unwrap())
            .set("time", t.at(friday, 18, 23))
            .build()
            .unwrap();
        assert!(s1.matches(&p));
    }
}
