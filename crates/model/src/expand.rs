//! Expanding disjunctive subscription templates.
//!
//! The paper's data model is conjunctive: one subscription = one
//! hyper-rectangle. Real requests are often disjunctive on some attribute —
//! Table 1's s1 wants a bike on *Friday evenings* (every Friday), s2 wants
//! sizes *17 or 19*. Content-based systems handle this by registering one
//! conjunctive subscription per combination; this module does that
//! expansion, with a safety cap and merging of adjacent ranges so "17, 18,
//! 19" becomes a single `[17, 19]` rather than three boxes.

use crate::{ModelError, Range, Schema, Subscription};

/// A disjunctive template: for each attribute, one *or more* admissible
/// ranges (empty list = unconstrained).
///
/// # Example
/// ```
/// use psc_model::{expand::Template, Schema, Range};
/// let schema = Schema::uniform(2, 0, 100);
/// let subs = Template::new(&schema)
///     .alternatives(0, vec![Range::new(0, 10).unwrap(), Range::new(50, 60).unwrap()])
///     .alternatives(1, vec![Range::new(5, 5).unwrap()])
///     .expand(16)
///     .unwrap();
/// assert_eq!(subs.len(), 2); // two x0 alternatives × one x1 alternative
/// ```
#[derive(Debug, Clone)]
pub struct Template {
    schema: Schema,
    /// Per attribute: admissible ranges (empty = full domain).
    choices: Vec<Vec<Range>>,
}

impl Template {
    /// Starts an unconstrained template over `schema`.
    pub fn new(schema: &Schema) -> Self {
        Template {
            schema: schema.clone(),
            choices: vec![Vec::new(); schema.len()],
        }
    }

    /// Sets the admissible ranges for attribute `attr` (by index), replacing
    /// earlier choices. Overlapping/adjacent ranges are coalesced, so the
    /// expansion never emits redundant boxes.
    ///
    /// # Panics
    /// Panics if `attr` is out of bounds for the schema.
    pub fn alternatives(mut self, attr: usize, ranges: Vec<Range>) -> Self {
        assert!(
            attr < self.choices.len(),
            "attribute index {attr} out of bounds"
        );
        self.choices[attr] = coalesce(ranges);
        self
    }

    /// Number of conjunctive subscriptions the expansion would produce.
    pub fn expansion_size(&self) -> usize {
        self.choices.iter().map(|c| c.len().max(1)).product()
    }

    /// Expands into conjunctive subscriptions (the cross-product of the
    /// per-attribute alternatives), in lexicographic choice order.
    ///
    /// # Errors
    /// Returns [`ModelError::OutOfDomain`] if any alternative escapes its
    /// attribute domain, and [`ModelError::SchemaMismatch`] (reused as the
    /// "too big" signal, carrying the sizes) when the expansion would exceed
    /// `cap` subscriptions.
    pub fn expand(&self, cap: usize) -> Result<Vec<Subscription>, ModelError> {
        let size = self.expansion_size();
        if size > cap {
            return Err(ModelError::SchemaMismatch {
                expected: cap,
                found: size,
            });
        }
        let mut out = Vec::with_capacity(size);
        let mut ranges: Vec<Range> = self.schema.iter().map(|(_, a)| *a.domain()).collect();
        self.expand_rec(0, &mut ranges, &mut out)?;
        Ok(out)
    }

    fn expand_rec(
        &self,
        attr: usize,
        ranges: &mut Vec<Range>,
        out: &mut Vec<Subscription>,
    ) -> Result<(), ModelError> {
        if attr == self.choices.len() {
            out.push(Subscription::from_ranges(&self.schema, ranges.clone())?);
            return Ok(());
        }
        if self.choices[attr].is_empty() {
            return self.expand_rec(attr + 1, ranges, out);
        }
        for r in &self.choices[attr] {
            ranges[attr] = *r;
            self.expand_rec(attr + 1, ranges, out)?;
            ranges[attr] = *self.schema.attribute(crate::AttrId(attr)).domain();
        }
        Ok(())
    }
}

/// Sorts and merges overlapping or adjacent ranges into a minimal
/// disjoint list.
pub fn coalesce(mut ranges: Vec<Range>) -> Vec<Range> {
    if ranges.is_empty() {
        return ranges;
    }
    ranges.sort_by_key(|r| r.lo());
    let mut out: Vec<Range> = Vec::with_capacity(ranges.len());
    for r in ranges {
        match out.last_mut() {
            Some(last) if r.lo() <= last.hi().saturating_add(1) => {
                if r.hi() > last.hi() {
                    *last = Range::new(last.lo(), r.hi()).expect("ordered");
                }
            }
            _ => out.push(r),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Schema;

    fn r(lo: i64, hi: i64) -> Range {
        Range::new(lo, hi).unwrap()
    }

    #[test]
    fn coalesce_merges_overlaps_and_adjacency() {
        assert_eq!(
            coalesce(vec![r(5, 10), r(0, 3), r(4, 6), r(20, 25)]),
            vec![r(0, 10), r(20, 25)]
        );
        assert_eq!(
            coalesce(vec![r(17, 17), r(19, 19), r(18, 18)]),
            vec![r(17, 19)]
        );
        assert_eq!(coalesce(vec![]), vec![]);
        assert_eq!(coalesce(vec![r(1, 2)]), vec![r(1, 2)]);
    }

    #[test]
    fn expansion_cross_product() {
        let schema = Schema::uniform(3, 0, 100);
        let t = Template::new(&schema)
            .alternatives(0, vec![r(0, 10), r(50, 60)])
            .alternatives(2, vec![r(1, 1), r(5, 5), r(9, 9)]);
        assert_eq!(t.expansion_size(), 6);
        let subs = t.expand(10).unwrap();
        assert_eq!(subs.len(), 6);
        // Unconstrained attribute stays at full domain everywhere.
        for s in &subs {
            assert_eq!(s.range(crate::AttrId(1)), schema.domain(crate::AttrId(1)));
        }
        // First expansion pairs the first alternatives.
        assert_eq!(subs[0].range(crate::AttrId(0)), &r(0, 10));
        assert_eq!(subs[0].range(crate::AttrId(2)), &r(1, 1));
    }

    #[test]
    fn expansion_cap_enforced() {
        let schema = Schema::uniform(2, 0, 100);
        let t = Template::new(&schema)
            .alternatives(0, vec![r(0, 0), r(2, 2), r(4, 4)])
            .alternatives(1, vec![r(0, 0), r(2, 2), r(4, 4)]);
        assert!(t.expand(8).is_err());
        assert_eq!(t.expand(9).unwrap().len(), 9);
    }

    #[test]
    fn friday_evenings_expand_to_weekly_subscriptions() {
        // Table 1's s1: Friday evenings for four weeks.
        use crate::catalog::Timeline;
        let tl = Timeline::with_resolution(60);
        let schema = Schema::builder()
            .attribute("bID", 0, 10_000)
            .attribute("time", 0, tl.steps_per_day() * 28 - 1)
            .build();
        let fridays: Vec<Range> = (0..4)
            .map(|week| tl.window(week * 7 + 4, (16, 0), (20, 0)).unwrap())
            .collect();
        let subs = Template::new(&schema)
            .alternatives(0, vec![r(1000, 1999)])
            .alternatives(1, fridays)
            .expand(8)
            .unwrap();
        assert_eq!(subs.len(), 4);
        // Consecutive Fridays are 7 days apart.
        let starts: Vec<i64> = subs
            .iter()
            .map(|s| s.range(crate::AttrId(1)).lo())
            .collect();
        for w in starts.windows(2) {
            assert_eq!(w[1] - w[0], 7 * tl.steps_per_day());
        }
    }

    #[test]
    fn out_of_domain_alternative_rejected() {
        let schema = Schema::uniform(1, 0, 10);
        let t = Template::new(&schema).alternatives(0, vec![r(5, 20)]);
        assert!(t.expand(10).is_err());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bad_attribute_index_panics() {
        let schema = Schema::uniform(1, 0, 10);
        let _ = Template::new(&schema).alternatives(3, vec![r(0, 1)]);
    }
}
