//! A small-vector type with inline storage for short sequences.
//!
//! The publish hot path manipulates tiny sequences everywhere — a
//! publication's attribute values (arity is single digits for every
//! workload in the paper), the batch indices a router selects for one
//! shard — and a heap `Vec` charges one allocation per sequence.
//! [`InlineVec`] stores up to `N` elements inline and only spills to the
//! heap beyond that, so the common short case allocates nothing.
//!
//! The crate forbids `unsafe`, so inline storage is a plain `[T; N]`
//! array and `T` must be `Copy + Default` (every hot-path element type —
//! `i64` values, `u32` indices — is). Spilling moves all elements into an
//! internal `Vec` once and stays heap-backed until [`InlineVec::clear`];
//! the spill `Vec`'s capacity is retained across `clear`, so a reused
//! buffer stops allocating after its first spill.
//!
//! # Example
//! ```
//! use psc_model::InlineVec;
//!
//! let mut v: InlineVec<i64, 4> = InlineVec::new();
//! v.push(1);
//! v.push(2);
//! assert_eq!(v.as_slice(), &[1, 2]);
//! v.extend([3, 4, 5]); // fifth element spills to the heap
//! assert_eq!(v.len(), 5);
//! assert_eq!(&v[..], &[1, 2, 3, 4, 5]);
//! ```

/// A vector storing up to `N` elements inline, spilling to the heap past
/// that. See the module docs for the trade-off.
#[derive(Clone)]
pub struct InlineVec<T: Copy + Default, const N: usize> {
    /// Element count while inline (`heap` empty); stale after a spill.
    len: usize,
    inline: [T; N],
    /// Empty while inline; holds *all* elements once spilled.
    heap: Vec<T>,
}

impl<T: Copy + Default, const N: usize> InlineVec<T, N> {
    /// An empty vector (no heap allocation).
    pub fn new() -> Self {
        InlineVec {
            len: 0,
            inline: [T::default(); N],
            heap: Vec::new(),
        }
    }

    /// Copies a slice into a new vector (inline when it fits).
    pub fn from_slice(values: &[T]) -> Self {
        let mut v = InlineVec::new();
        v.extend_from_slice(values);
        v
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        if self.heap.is_empty() {
            self.len
        } else {
            self.heap.len()
        }
    }

    /// Whether the vector holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the elements currently live on the heap.
    pub fn spilled(&self) -> bool {
        !self.heap.is_empty()
    }

    /// Appends one element, spilling to the heap at the `N+1`th.
    pub fn push(&mut self, value: T) {
        if self.heap.is_empty() {
            if self.len < N {
                self.inline[self.len] = value;
                self.len += 1;
                return;
            }
            // Spill: move the inline prefix into the heap buffer (whose
            // capacity survives `clear`, so a reused vector spills
            // allocation-free after the first time).
            self.heap.reserve(N + 1);
            self.heap.extend_from_slice(&self.inline[..N]);
        }
        self.heap.push(value);
    }

    /// Appends every element of `values`.
    pub fn extend_from_slice(&mut self, values: &[T]) {
        for &v in values {
            self.push(v);
        }
    }

    /// Removes all elements, returning to inline storage. Retains the
    /// spill buffer's capacity.
    pub fn clear(&mut self) {
        self.len = 0;
        self.heap.clear();
    }

    /// The elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        if self.heap.is_empty() {
            &self.inline[..self.len]
        } else {
            &self.heap
        }
    }

    /// The elements as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        if self.heap.is_empty() {
            &mut self.inline[..self.len]
        } else {
            &mut self.heap
        }
    }

    /// Iterates over the elements.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.as_slice().iter()
    }
}

impl<T: Copy + Default, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        InlineVec::new()
    }
}

impl<T: Copy + Default, const N: usize> std::ops::Deref for InlineVec<T, N> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + Default, const N: usize> std::ops::DerefMut for InlineVec<T, N> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Copy + Default + std::fmt::Debug, const N: usize> std::fmt::Debug for InlineVec<T, N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + Eq, const N: usize> Eq for InlineVec<T, N> {}

impl<T: Copy + Default + std::hash::Hash, const N: usize> std::hash::Hash for InlineVec<T, N> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl<T: Copy + Default, const N: usize> Extend<T> for InlineVec<T, N> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }
}

impl<T: Copy + Default, const N: usize> FromIterator<T> for InlineVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = InlineVec::new();
        v.extend(iter);
        v
    }
}

impl<'a, T: Copy + Default, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_inline_up_to_capacity() {
        let mut v: InlineVec<u32, 4> = InlineVec::new();
        assert!(v.is_empty());
        for i in 0..4 {
            v.push(i);
            assert!(!v.spilled(), "within capacity stays inline");
        }
        assert_eq!(v.as_slice(), &[0, 1, 2, 3]);
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn spills_past_capacity_and_preserves_order() {
        let mut v: InlineVec<u32, 4> = InlineVec::new();
        for i in 0..10 {
            v.push(i);
        }
        assert!(v.spilled());
        assert_eq!(v.len(), 10);
        assert_eq!(v.as_slice(), (0..10).collect::<Vec<_>>().as_slice());
    }

    #[test]
    fn clear_returns_to_inline_mode() {
        let mut v: InlineVec<u32, 2> = InlineVec::from_slice(&[1, 2, 3]);
        assert!(v.spilled());
        v.clear();
        assert!(v.is_empty());
        assert!(!v.spilled());
        v.push(9);
        assert_eq!(v.as_slice(), &[9]);
        assert!(!v.spilled(), "refill within capacity is inline again");
    }

    #[test]
    fn equality_ignores_representation() {
        let inline: InlineVec<i64, 8> = InlineVec::from_slice(&[1, 2, 3]);
        let mut spilled: InlineVec<i64, 2> = InlineVec::new();
        spilled.extend([1, 2, 3]);
        assert_eq!(inline.as_slice(), spilled.as_slice());
        let other: InlineVec<i64, 8> = InlineVec::from_slice(&[1, 2, 3]);
        assert_eq!(inline, other);
    }

    #[test]
    fn collects_and_derefs() {
        let v: InlineVec<u32, 4> = (0..3).collect();
        assert_eq!(v[1], 1);
        assert_eq!(v.iter().sum::<u32>(), 3);
        let doubled: Vec<u32> = v.iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![0, 2, 4]);
    }

    #[test]
    fn mutation_through_deref_mut() {
        let mut v: InlineVec<u32, 2> = InlineVec::from_slice(&[5, 6, 7]);
        v[0] = 50;
        v.as_mut_slice()[2] = 70;
        assert_eq!(v.as_slice(), &[50, 6, 70]);
    }
}
