//! Log-space volumes for subscription sizes.
//!
//! `I(s)` — the number of integer points inside subscription `s` — overflows
//! `u128` already for modest schemas (20 attributes with million-point domains
//! give `10^120` points). Theoretical iteration counts `d` in Figures 7 and 9
//! of the paper reach `10^50`. Both therefore need log-space arithmetic.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A non-negative quantity stored as its natural logarithm.
///
/// Supports multiplication (via [`Add`]) and division (via [`Sub`]) of the
/// underlying quantities, plus lossy extraction back to `f64`/`u128`.
///
/// # Example
/// ```
/// use psc_model::LogVolume;
/// let a = LogVolume::from_count(1_000_000);
/// let b = LogVolume::from_count(1_000);
/// let product = a + b; // 10^9
/// assert!((product.log10() - 9.0).abs() < 1e-9);
/// assert_eq!((a - b).to_f64().round() as u64, 1000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct LogVolume {
    ln: f64,
}

impl LogVolume {
    /// The multiplicative identity (volume 1, `ln = 0`).
    pub const ONE: LogVolume = LogVolume { ln: 0.0 };

    /// Volume zero (`ln = -∞`). Multiplying by zero stays zero.
    pub const ZERO: LogVolume = LogVolume {
        ln: f64::NEG_INFINITY,
    };

    /// Builds from an exact point count.
    pub fn from_count(count: u128) -> Self {
        if count == 0 {
            LogVolume::ZERO
        } else {
            LogVolume {
                ln: (count as f64).ln(),
            }
        }
    }

    /// Builds from a natural logarithm directly.
    pub fn from_ln(ln: f64) -> Self {
        LogVolume { ln }
    }

    /// The natural logarithm of the stored quantity.
    pub fn ln(&self) -> f64 {
        self.ln
    }

    /// The base-10 logarithm of the stored quantity.
    pub fn log10(&self) -> f64 {
        self.ln / std::f64::consts::LN_10
    }

    /// The quantity itself; `f64::INFINITY` when it overflows `f64`.
    pub fn to_f64(&self) -> f64 {
        self.ln.exp()
    }

    /// Whether the stored quantity is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.ln == f64::NEG_INFINITY
    }

    /// The ratio `self / other` as a plain `f64` probability, clamped to
    /// `[0, 1]`. Returns 0 when `self` is zero; 1 when they are equal.
    pub fn ratio(&self, other: &LogVolume) -> f64 {
        if self.is_zero() {
            return 0.0;
        }
        (self.ln - other.ln).exp().clamp(0.0, 1.0)
    }
}

impl Default for LogVolume {
    fn default() -> Self {
        LogVolume::ONE
    }
}

impl Add for LogVolume {
    type Output = LogVolume;
    /// Multiplies the underlying quantities.
    fn add(self, rhs: LogVolume) -> LogVolume {
        LogVolume {
            ln: self.ln + rhs.ln,
        }
    }
}

impl AddAssign for LogVolume {
    fn add_assign(&mut self, rhs: LogVolume) {
        self.ln += rhs.ln;
    }
}

impl Sub for LogVolume {
    type Output = LogVolume;
    /// Divides the underlying quantities.
    fn sub(self, rhs: LogVolume) -> LogVolume {
        LogVolume {
            ln: self.ln - rhs.ln,
        }
    }
}

impl fmt::Display for LogVolume {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            write!(f, "0")
        } else if self.log10() < 15.0 {
            write!(f, "{:.0}", self.to_f64())
        } else {
            write!(f, "10^{:.2}", self.log10())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_count_roundtrip() {
        let v = LogVolume::from_count(12345);
        assert!((v.to_f64() - 12345.0).abs() < 1e-6);
    }

    #[test]
    fn zero_is_absorbing_under_multiplication() {
        let z = LogVolume::ZERO;
        let v = LogVolume::from_count(99);
        assert!((z + v).is_zero());
        assert!((v + z).is_zero());
    }

    #[test]
    fn one_is_identity() {
        let v = LogVolume::from_count(7);
        assert!(((LogVolume::ONE + v).to_f64() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn huge_products_stay_finite_in_log_space() {
        // 20 attributes, each with 10^6 points: 10^120 total.
        let mut v = LogVolume::ONE;
        for _ in 0..20 {
            v += LogVolume::from_count(1_000_000);
        }
        assert!((v.log10() - 120.0).abs() < 1e-9);
        // 60 attributes: 10^360 overflows f64 (max ~1.8e308)...
        let mut w = LogVolume::ONE;
        for _ in 0..60 {
            w += LogVolume::from_count(1_000_000);
        }
        assert!(w.to_f64().is_infinite());
        assert!(w.ln().is_finite()); // ...but the log stays finite.
        assert!((w.log10() - 360.0).abs() < 1e-9);
    }

    #[test]
    fn ratio_clamped_probability() {
        let small = LogVolume::from_count(10);
        let big = LogVolume::from_count(1000);
        assert!((small.ratio(&big) - 0.01).abs() < 1e-12);
        assert_eq!(big.ratio(&big), 1.0);
        assert_eq!(LogVolume::ZERO.ratio(&big), 0.0);
        // Numerator larger than denominator clamps to 1.
        assert_eq!(big.ratio(&small), 1.0);
    }

    #[test]
    fn display_switches_to_exponent_form() {
        assert_eq!(LogVolume::from_count(0).to_string(), "0");
        assert_eq!(LogVolume::from_count(41).to_string(), "41");
        let huge = LogVolume::from_ln(200.0);
        assert!(huge.to_string().starts_with("10^"));
    }
}
