//! Publications: points in the attribute space (Definition 6 of the paper).

use crate::{AttrId, InlineVec, ModelError, Range, Schema, Subscription};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Inline storage for a publication's attribute values.
///
/// Every workload in the paper has single-digit arity (the bike-rental
/// schema of Table 1 has five attributes), so eight inline slots cover
/// the common case without a heap allocation per publication; wider
/// schemas spill transparently.
pub type ValueVec = InlineVec<i64, 8>;

/// Identifier assigned to publications by brokers and experiments.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct PublicationId(pub u64);

impl fmt::Display for PublicationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A publication: one value per schema attribute.
///
/// Definition 6: "A publication p is a point in the attribute space. It has
/// values for all defined attributes." For imprecise data sources (Section 1
/// of the paper advocates treating publications as small polyhedra), use
/// [`Publication::to_box`] to lift a point to a rectangle of a chosen radius
/// and match it with subscription-subscription coverage instead.
///
/// # Example
/// ```
/// use psc_model::{Schema, Publication};
/// let schema = Schema::uniform(3, 0, 100);
/// let p = Publication::builder(&schema)
///     .set("x0", 5)
///     .set("x1", 50)
///     .set("x2", 99)
///     .build()?;
/// assert_eq!(p.values(), &[5, 50, 99]);
/// # Ok::<(), psc_model::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Publication {
    schema: Schema,
    values: ValueVec,
}

impl std::hash::Hash for Publication {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Equal publications have equal value vectors; the schema (not
        // hashable) can be omitted without breaking the Hash/Eq contract.
        self.values.hash(state);
    }
}

impl Publication {
    /// Starts building a publication over `schema`.
    pub fn builder(schema: &Schema) -> PublicationBuilder {
        PublicationBuilder {
            schema: schema.clone(),
            values: vec![None; schema.len()],
            error: None,
        }
    }

    /// Builds a publication directly from values in schema order.
    ///
    /// # Errors
    /// Returns [`ModelError::SchemaMismatch`] on wrong arity, or
    /// [`ModelError::OutOfDomain`] when a value escapes its attribute domain.
    pub fn from_values(schema: &Schema, values: Vec<i64>) -> Result<Self, ModelError> {
        Self::from_value_slice(schema, &values)
    }

    /// Builds a publication from a borrowed value slice in schema order —
    /// the caller keeps its buffer, values are copied into inline storage.
    ///
    /// # Errors
    /// Same contract as [`Publication::from_values`].
    pub fn from_value_slice(schema: &Schema, values: &[i64]) -> Result<Self, ModelError> {
        Self::validate_values(schema, values)?;
        Ok(Publication {
            schema: schema.clone(),
            values: ValueVec::from_slice(values),
        })
    }

    /// Builds a publication from an already-inline value vector — the
    /// zero-copy entry point for the binary decode path.
    ///
    /// # Errors
    /// Same contract as [`Publication::from_values`].
    pub fn from_value_vec(schema: &Schema, values: ValueVec) -> Result<Self, ModelError> {
        Self::validate_values(schema, &values)?;
        Ok(Publication {
            schema: schema.clone(),
            values,
        })
    }

    fn validate_values(schema: &Schema, values: &[i64]) -> Result<(), ModelError> {
        if values.len() != schema.len() {
            return Err(ModelError::SchemaMismatch {
                expected: schema.len(),
                found: values.len(),
            });
        }
        for (id, attr) in schema.iter() {
            if !attr.domain().contains(values[id.0]) {
                return Err(ModelError::OutOfDomain {
                    attribute: attr.name().to_string(),
                    value: values[id.0],
                });
            }
        }
        Ok(())
    }

    /// The schema this publication lives in.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The point coordinates in schema order.
    pub fn values(&self) -> &[i64] {
        &self.values
    }

    /// The value for attribute `attr`.
    ///
    /// # Panics
    /// Panics if `attr` is out of bounds.
    pub fn value(&self, attr: AttrId) -> i64 {
        self.values[attr.0]
    }

    /// Lifts this point to a rectangle of half-width `radius` per attribute
    /// (clamped to the domains), modelling an imprecise publication.
    pub fn to_box(&self, radius: i64) -> Subscription {
        let ranges = self
            .schema
            .iter()
            .map(|(id, attr)| {
                let v = self.values[id.0];
                Range::new(v.saturating_sub(radius), v.saturating_add(radius))
                    .expect("radius >= 0 keeps lo <= hi")
                    .clamp_to(attr.domain())
                    .expect("point is inside domain, so box intersects it")
            })
            .collect();
        Subscription::from_ranges(&self.schema, ranges).expect("clamped ranges are within domains")
    }
}

impl fmt::Display for Publication {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, (id, attr)) in self.schema.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}={}", attr.name(), self.values[id.0])?;
        }
        write!(f, ")")
    }
}

/// Builder returned by [`Publication::builder`].
#[derive(Debug)]
pub struct PublicationBuilder {
    schema: Schema,
    values: Vec<Option<i64>>,
    error: Option<ModelError>,
}

impl PublicationBuilder {
    /// Sets the value for attribute `name`.
    pub fn set(mut self, name: &str, v: i64) -> Self {
        if self.error.is_some() {
            return self;
        }
        match self.schema.attr_id(name) {
            None => self.error = Some(ModelError::UnknownAttribute(name.to_string())),
            Some(id) => {
                if !self.schema.domain(id).contains(v) {
                    self.error = Some(ModelError::OutOfDomain {
                        attribute: name.to_string(),
                        value: v,
                    });
                } else {
                    self.values[id.0] = Some(v);
                }
            }
        }
        self
    }

    /// Sets the value for attribute `id` (by index).
    pub fn set_id(mut self, id: AttrId, v: i64) -> Self {
        if self.error.is_some() {
            return self;
        }
        match self.schema.get(id) {
            None => {
                self.error = Some(ModelError::AttributeOutOfBounds {
                    index: id.0,
                    len: self.schema.len(),
                })
            }
            Some(attr) => {
                if !attr.domain().contains(v) {
                    self.error = Some(ModelError::OutOfDomain {
                        attribute: attr.name().to_string(),
                        value: v,
                    });
                } else {
                    self.values[id.0] = Some(v);
                }
            }
        }
        self
    }

    /// Finalizes the publication.
    ///
    /// # Errors
    /// Returns the first chaining error, or [`ModelError::MissingValue`] if
    /// any attribute was left unset — publications must be total points.
    pub fn build(self) -> Result<Publication, ModelError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        let mut values = ValueVec::new();
        for (id, attr) in self.schema.iter() {
            match self.values[id.0] {
                Some(v) => values.push(v),
                None => return Err(ModelError::MissingValue(attr.name().to_string())),
            }
        }
        Ok(Publication {
            schema: self.schema,
            values,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::builder()
            .attribute("a", 0, 100)
            .attribute("b", -50, 50)
            .build()
    }

    #[test]
    fn builder_requires_all_values() {
        let err = Publication::builder(&schema())
            .set("a", 5)
            .build()
            .unwrap_err();
        assert_eq!(err, ModelError::MissingValue("b".into()));
    }

    #[test]
    fn builder_rejects_out_of_domain() {
        let err = Publication::builder(&schema())
            .set("a", 101)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ModelError::OutOfDomain {
                attribute: "a".into(),
                value: 101
            }
        );
    }

    #[test]
    fn builder_rejects_unknown_attribute() {
        let err = Publication::builder(&schema())
            .set("zzz", 1)
            .build()
            .unwrap_err();
        assert_eq!(err, ModelError::UnknownAttribute("zzz".into()));
    }

    #[test]
    fn from_values_checks_arity() {
        let err = Publication::from_values(&schema(), vec![1]).unwrap_err();
        assert_eq!(
            err,
            ModelError::SchemaMismatch {
                expected: 2,
                found: 1
            }
        );
    }

    #[test]
    fn set_id_matches_set_by_name() {
        let a = Publication::builder(&schema())
            .set("a", 7)
            .set("b", -3)
            .build()
            .unwrap();
        let b = Publication::builder(&schema())
            .set_id(AttrId(0), 7)
            .set_id(AttrId(1), -3)
            .build()
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(a.value(AttrId(1)), -3);
    }

    #[test]
    fn to_box_clamps_to_domain() {
        let p = Publication::builder(&schema())
            .set("a", 1)
            .set("b", 50)
            .build()
            .unwrap();
        let boxed = p.to_box(5);
        assert_eq!(boxed.range(AttrId(0)), &Range::new(0, 6).unwrap());
        assert_eq!(boxed.range(AttrId(1)), &Range::new(45, 50).unwrap());
        // The box always contains the original point.
        assert!(boxed.matches(&p));
    }

    #[test]
    fn to_box_radius_zero_is_the_point() {
        let p = Publication::builder(&schema())
            .set("a", 10)
            .set("b", 0)
            .build()
            .unwrap();
        let boxed = p.to_box(0);
        assert_eq!(boxed.size_exact(), Some(1));
        assert!(boxed.matches(&p));
    }

    #[test]
    fn display_lists_attributes() {
        let p = Publication::builder(&schema())
            .set("a", 1)
            .set("b", 2)
            .build()
            .unwrap();
        assert_eq!(p.to_string(), "(a=1, b=2)");
    }
}
