//! Error type for model construction and validation.

use std::fmt;

/// Error raised while building or validating model objects.
///
/// Every public constructor in this crate validates its arguments
/// (empty ranges, unknown attributes, out-of-domain values) and reports
/// problems through this type instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A range was constructed with `lo > hi`.
    EmptyRange {
        /// Requested lower bound.
        lo: i64,
        /// Requested upper bound.
        hi: i64,
    },
    /// An attribute name was not found in the schema.
    UnknownAttribute(String),
    /// An attribute index was out of bounds for the schema.
    AttributeOutOfBounds {
        /// The offending index.
        index: usize,
        /// Number of attributes in the schema.
        len: usize,
    },
    /// A value or range lies outside the attribute's domain.
    OutOfDomain {
        /// Attribute name.
        attribute: String,
        /// Offending value (for ranges, the violating endpoint).
        value: i64,
    },
    /// The same attribute was constrained twice in one builder.
    DuplicateConstraint(String),
    /// A publication is missing a value for an attribute.
    MissingValue(String),
    /// Two objects belong to different schemas (different attribute counts).
    SchemaMismatch {
        /// Expected number of attributes.
        expected: usize,
        /// Found number of attributes.
        found: usize,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::EmptyRange { lo, hi } => {
                write!(f, "empty range: lo {lo} greater than hi {hi}")
            }
            ModelError::UnknownAttribute(name) => write!(f, "unknown attribute `{name}`"),
            ModelError::AttributeOutOfBounds { index, len } => {
                write!(
                    f,
                    "attribute index {index} out of bounds for schema of {len}"
                )
            }
            ModelError::OutOfDomain { attribute, value } => {
                write!(f, "value {value} outside domain of attribute `{attribute}`")
            }
            ModelError::DuplicateConstraint(name) => {
                write!(f, "attribute `{name}` constrained more than once")
            }
            ModelError::MissingValue(name) => {
                write!(f, "publication missing value for attribute `{name}`")
            }
            ModelError::SchemaMismatch { expected, found } => {
                write!(
                    f,
                    "schema mismatch: expected {expected} attributes, found {found}"
                )
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = ModelError::EmptyRange { lo: 5, hi: 3 };
        let msg = e.to_string();
        assert!(msg.starts_with("empty range"));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<ModelError>();
    }

    #[test]
    fn all_variants_display_nonempty() {
        let variants: Vec<ModelError> = vec![
            ModelError::EmptyRange { lo: 1, hi: 0 },
            ModelError::UnknownAttribute("x".into()),
            ModelError::AttributeOutOfBounds { index: 9, len: 3 },
            ModelError::OutOfDomain {
                attribute: "x".into(),
                value: -1,
            },
            ModelError::DuplicateConstraint("x".into()),
            ModelError::MissingValue("x".into()),
            ModelError::SchemaMismatch {
                expected: 3,
                found: 2,
            },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }
}
