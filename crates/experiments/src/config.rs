//! Experiment run configuration.

/// Shared knobs for all experiments.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Base RNG seed; per-point seeds derive deterministically from it.
    pub seed: u64,
    /// Scale factor on the paper's per-point run counts (1.0 = the paper's
    /// 1000/3000-run protocol; `--quick` uses a small fraction).
    pub scale: f64,
    /// Scale factor on sweep extents (subscription counts, stream length).
    pub size_scale: f64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            seed: 0x5eed_2006,
            scale: 1.0,
            size_scale: 1.0,
        }
    }
}

impl RunConfig {
    /// The quick profile used by `--quick` and by integration tests: a small
    /// fraction of the runs and shorter sweeps.
    pub fn quick() -> Self {
        RunConfig {
            seed: 0x5eed_2006,
            scale: 0.02,
            size_scale: 0.2,
        }
    }

    /// Applies `scale` to a paper-protocol run count, with a floor.
    pub fn runs(&self, paper_runs: u64) -> u64 {
        ((paper_runs as f64 * self.scale).round() as u64).max(3)
    }

    /// Applies `size_scale` to a sweep extent, with a floor.
    pub fn size(&self, paper_size: usize) -> usize {
        ((paper_size as f64 * self.size_scale).round() as usize).max(10)
    }

    /// Derives a per-point seed from the base seed and coordinates.
    pub fn point_seed(&self, a: u64, b: u64, c: u64) -> u64 {
        // SplitMix-style mixing keeps points decorrelated but reproducible.
        let mut z = self
            .seed
            .wrapping_add(a.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(b.wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(c.wrapping_mul(0x94D0_49BB_1331_11EB));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_scaling_with_floor() {
        let cfg = RunConfig {
            scale: 0.01,
            ..RunConfig::default()
        };
        assert_eq!(cfg.runs(1000), 10);
        assert_eq!(cfg.runs(100), 3, "floor applies");
        assert_eq!(RunConfig::default().runs(1000), 1000);
    }

    #[test]
    fn point_seeds_differ_by_coordinates() {
        let cfg = RunConfig::default();
        let s1 = cfg.point_seed(1, 2, 3);
        let s2 = cfg.point_seed(1, 2, 4);
        let s3 = cfg.point_seed(2, 2, 3);
        assert_ne!(s1, s2);
        assert_ne!(s1, s3);
        assert_eq!(s1, cfg.point_seed(1, 2, 3), "deterministic");
    }
}
