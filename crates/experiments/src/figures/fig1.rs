//! Figure 1: the nine-broker reverse-path-forwarding worked example
//! (Section 2), run under the three covering policies.

use crate::config::RunConfig;
use crate::table::Table;
use psc_broker::{BrokerId, CoveringPolicy, Network, Topology};
use psc_model::{Publication, Schema, Subscription, SubscriptionId};

/// Runs the example and returns one table per aspect (traffic, trees).
pub fn run(_cfg: &RunConfig) -> Vec<Table> {
    let schema = Schema::uniform(1, 0, 99);
    let s1 = Subscription::builder(&schema)
        .range("x0", 0, 50)
        .build()
        .expect("valid");
    let s2 = Subscription::builder(&schema)
        .range("x0", 10, 20)
        .build()
        .expect("valid");
    let n1 = Publication::builder(&schema)
        .set("x0", 15)
        .build()
        .expect("valid");
    let n2 = Publication::builder(&schema)
        .set("x0", 40)
        .build()
        .expect("valid");
    let b = |i: usize| BrokerId(i - 1);

    let mut traffic = Table::new(
        "Figure 1: subscription traffic for s1 (at B1) then s2 ⊑ s1 (at B6)",
        &["policy", "sub msgs", "suppressed"],
    );
    let mut trees = Table::new(
        "Figure 1: delivery trees (n1 matches s1+s2 from B9; n2 matches s1 from B5)",
        &[
            "policy",
            "n1 tree",
            "n1 deliveries",
            "n2 tree",
            "n2 deliveries",
        ],
    );

    for policy in [
        CoveringPolicy::Flooding,
        CoveringPolicy::Pairwise,
        CoveringPolicy::group(1e-10),
    ] {
        let name = policy.name();
        let mut net = Network::new(Topology::figure1(), policy, 1);
        net.subscribe(b(1), SubscriptionId(1), s1.clone());
        net.subscribe(b(6), SubscriptionId(2), s2.clone());
        let m = net.metrics();
        traffic.row(&[
            name,
            &m.subscription_messages.to_string(),
            &m.subscriptions_suppressed.to_string(),
        ]);

        let r1 = net.publish(b(9), &n1);
        let r2 = net.publish(b(5), &n2);
        trees.row(&[
            name,
            &tree_names(&r1.visited),
            &r1.delivered_to.len().to_string(),
            &tree_names(&r2.visited),
            &r2.delivered_to.len().to_string(),
        ]);
    }
    vec![traffic, trees]
}

fn tree_names(visited: &[BrokerId]) -> String {
    let mut names: Vec<String> = visited.iter().map(|b| b.to_string()).collect();
    names.sort();
    names.join("+")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_narrative() {
        let tables = run(&RunConfig::quick());
        let traffic = &tables[0];
        // Flooding: 16 messages; covering policies: 11 with 3 suppressions.
        assert_eq!(traffic.rows[0][1], "16");
        assert_eq!(traffic.rows[1][1], "11");
        assert_eq!(traffic.rows[1][2], "3");
        assert_eq!(traffic.rows[2][1], "11");
        // Delivery trees identical across policies; n1 reaches both subs.
        let trees = &tables[1];
        for row in &trees.rows {
            assert_eq!(row[1], "B1+B3+B4+B6+B7+B9");
            assert_eq!(row[2], "2");
            assert_eq!(row[3], "B1+B3+B4+B5");
            assert_eq!(row[4], "1");
        }
    }
}
