//! Figures 8, 9 and 10: the non-cover scenario (Section 6.2).
//!
//! - **Figure 8** — MCS reduction (here *all* `k` subscriptions are
//!   redundant: the set does not cover `s`).
//! - **Figure 9** — `log10(theoretical d)` with and without MCS, δ = 1e-10.
//! - **Figure 10** — actual RSPC iterations performed by the full pipeline
//!   (expected ≪ 1: the optimizations usually decide non-cover before any
//!   sampling) vs by bare RSPC without the fast paths.

use crate::config::RunConfig;
use crate::figures::{paper_ks, PAPER_MS};
use crate::table::Table;
use psc_core::{ConflictTable, MinimizedCoverSet, SubsumptionChecker, WitnessEstimate};
use psc_workload::{seeded_rng, NonCoverScenario};

/// The paper's error probability for this experiment.
pub const DELTA: f64 = 1e-10;

/// Cap on bare-RSPC sampling when the theoretical `d` is astronomically
/// large (the witness is found long before any realistic cap).
const BARE_RSPC_CAP: u64 = 200_000;

/// Runs the sweep and returns `[figure 8, figure 9, figure 10]`.
pub fn run(cfg: &RunConfig) -> Vec<Table> {
    let runs = cfg.runs(1000);
    let ks = paper_ks(cfg.size(310));

    let mut fig8_cols: Vec<String> = vec!["k".into()];
    let mut fig9_cols: Vec<String> = vec!["k".into()];
    let mut fig10_cols: Vec<String> = vec!["k".into()];
    for m in PAPER_MS {
        fig8_cols.push(format!("m={m}"));
        fig9_cols.push(format!("m={m}"));
        fig9_cols.push(format!("m={m};MCS"));
        fig10_cols.push(format!("m={m}"));
        fig10_cols.push(format!("m={m};MCS"));
    }
    let mut fig8 = Table::new(
        format!("Figure 8: redundant-subscription reduction, non-cover ({runs} runs/point)"),
        &fig8_cols.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    let mut fig9 = Table::new(
        format!("Figure 9: log10(theoretical d), non-cover, delta = {DELTA:e}"),
        &fig9_cols.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    let mut fig10 = Table::new(
        "Figure 10: actual RSPC iterations, non-cover (bare RSPC vs full pipeline)",
        &fig10_cols.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );

    // Full pipeline (the paper's algorithm) and bare RSPC for contrast.
    let full_checker = SubsumptionChecker::builder()
        .error_probability(DELTA)
        .max_iterations(BARE_RSPC_CAP)
        .build();
    let bare_checker = SubsumptionChecker::builder()
        .error_probability(DELTA)
        .max_iterations(BARE_RSPC_CAP)
        .pairwise_fast_path(false)
        .corollary3_fast_path(false)
        .mcs(false)
        .prefilter_disjoint(false)
        .build();

    for &k in &ks {
        let mut fig8_row = vec![k as f64];
        let mut fig9_row = vec![k as f64];
        let mut fig10_row = vec![k as f64];
        for m in PAPER_MS {
            let scenario = NonCoverScenario::new(m, k);
            let mut sum_reduction = 0.0;
            let mut sum_log_d_full = 0.0;
            let mut sum_log_d_mcs = 0.0;
            let mut sum_iter_bare = 0.0;
            let mut sum_iter_full = 0.0;
            for run in 0..runs {
                let mut rng = seeded_rng(cfg.point_seed(m as u64, k as u64, run));
                let inst = scenario.generate(&mut rng);

                let table = ConflictTable::build(&inst.s, &inst.set);
                let est_full = WitnessEstimate::from_table(&inst.s, &table);
                sum_log_d_full += est_full.log10_iterations(DELTA);

                let outcome = MinimizedCoverSet::reduce_table(table);
                sum_reduction += outcome.removed.len() as f64 / inst.set.len() as f64;
                if !outcome.is_empty() {
                    let est_mcs = WitnessEstimate::from_table(&inst.s, &outcome.table);
                    sum_log_d_mcs += est_mcs.log10_iterations(DELTA);
                }
                // else: log10 d contribution is 0 — no sampling needed at all.

                let bare = bare_checker.check(&inst.s, &inst.set, &mut rng);
                assert!(!bare.is_covered(), "bare RSPC missed a non-cover");
                sum_iter_bare += bare.stats.rspc_iterations as f64;

                let full = full_checker.check(&inst.s, &inst.set, &mut rng);
                assert!(!full.is_covered(), "pipeline missed a non-cover");
                sum_iter_full += full.stats.rspc_iterations as f64;
            }
            let n = runs as f64;
            fig8_row.push(sum_reduction / n);
            fig9_row.push(sum_log_d_full / n);
            fig9_row.push(sum_log_d_mcs / n);
            fig10_row.push(sum_iter_bare / n);
            fig10_row.push(sum_iter_full / n);
        }
        fig8.row_values(&fig8_row);
        fig9.row_values(&fig9_row);
        fig10.row_values(&fig10_row);
    }
    vec![fig8, fig9, fig10]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_expected_shapes() {
        let tables = run(&RunConfig::quick());
        assert_eq!(tables.len(), 3);
        // Figure 8: near-total reduction (paper: >= 0.88).
        for row in &tables[0].rows {
            for cell in &row[1..] {
                let v: f64 = cell.parse().unwrap();
                assert!(v >= 0.7, "non-cover reduction {v} too low");
            }
        }
        // Figure 10: the full pipeline needs (almost) no iterations.
        for row in &tables[2].rows {
            for pair in [(2usize, 1usize), (4, 3), (6, 5)] {
                let with_mcs: f64 = row[pair.0].parse().unwrap();
                let bare: f64 = row[pair.1].parse().unwrap();
                assert!(with_mcs <= bare + 1e-9);
                assert!(with_mcs < 2.0, "pipeline iterations {with_mcs} too high");
            }
        }
    }
}
