//! Figures 11 and 12: the extreme non-cover scenario (Section 6.3).
//!
//! `k = 50` subscriptions, `m = 5` attributes; the set covers `s` entirely
//! except a gap of 0.5%–4.5% of one attribute's width. For error
//! probabilities δ ∈ {1e-3, 1e-6, 1e-10}:
//!
//! - **Figure 11** — average number of RSPC guesses over 3000 runs (similar
//!   across δ, decreasing with the gap: the discovery time is geometric in
//!   the gap fraction).
//! - **Figure 12** — number of false decisions (probabilistic YES on a
//!   non-covered instance) in 3000 runs: grows with δ, shrinks with the gap.

use crate::config::RunConfig;
use crate::table::Table;
use psc_core::SubsumptionChecker;
use psc_workload::{seeded_rng, ExtremeNonCoverScenario};

/// The paper's three error probabilities.
pub const DELTAS: [f64; 3] = [1e-3, 1e-6, 1e-10];

/// The paper's gap sweep: 0.5% to 4.5% in steps of 0.5%.
pub fn gap_fractions() -> Vec<f64> {
    (1..=9).map(|i| i as f64 * 0.005).collect()
}

/// Runs the sweep and returns `[figure 11, figure 12]`.
pub fn run(cfg: &RunConfig) -> Vec<Table> {
    let runs = cfg.runs(3000);
    let mut cols: Vec<String> = vec!["gap%".into()];
    for d in DELTAS {
        cols.push(format!("err={d:.0e}"));
    }
    let col_refs: Vec<&str> = cols.iter().map(|s| s.as_str()).collect();
    let mut fig11 = Table::new(
        format!("Figure 11: average actual RSPC iterations, extreme non-cover ({runs} runs/point)"),
        &col_refs,
    );
    let mut fig12 = Table::new(
        format!(
            "Figure 12: false decisions per {runs} runs (normalized to 3000), extreme non-cover"
        ),
        &col_refs,
    );

    for (gi, gap) in gap_fractions().into_iter().enumerate() {
        let mut iter_row = vec![gap * 100.0];
        let mut false_row = vec![gap * 100.0];
        for (di, delta) in DELTAS.into_iter().enumerate() {
            let scenario = ExtremeNonCoverScenario::new(gap);
            let checker = SubsumptionChecker::builder()
                .error_probability(delta)
                .max_iterations(10_000_000)
                .build();
            let mut sum_iters = 0u64;
            let mut false_decisions = 0u64;
            for run in 0..runs {
                let mut rng = seeded_rng(cfg.point_seed(gi as u64, di as u64, run));
                let inst = scenario.generate(&mut rng);
                let decision = checker.check(&inst.s, &inst.set, &mut rng);
                sum_iters += decision.stats.rspc_iterations;
                if decision.is_covered() {
                    // Ground truth is non-cover by construction.
                    false_decisions += 1;
                }
            }
            iter_row.push(sum_iters as f64 / runs as f64);
            false_row.push(false_decisions as f64 * 3000.0 / runs as f64);
        }
        fig11.row_values(&iter_row);
        fig12.row_values(&false_row);
    }
    vec![fig11, fig12]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_expected_shapes() {
        let cfg = RunConfig {
            scale: 0.05,
            size_scale: 1.0,
            ..RunConfig::quick()
        };
        let tables = run(&cfg);
        assert_eq!(tables.len(), 2);
        let fig11 = &tables[0];
        assert_eq!(fig11.rows.len(), 9);
        // Iterations decrease as the gap grows (compare smallest/largest gap
        // at the strictest delta, which has the largest budget).
        let first: f64 = fig11.rows.first().unwrap()[3].parse().unwrap();
        let last: f64 = fig11.rows.last().unwrap()[3].parse().unwrap();
        assert!(
            last < first,
            "iterations should fall with gap size: first={first} last={last}"
        );
        // False decisions: strictest delta should have no more errors than
        // the loosest at the smallest gap.
        let fig12 = &tables[1];
        let loose: f64 = fig12.rows[0][1].parse().unwrap();
        let strict: f64 = fig12.rows[0][3].parse().unwrap();
        assert!(strict <= loose, "strict={strict} loose={loose}");
    }
}
