//! Figures 6 and 7: the redundant covering scenario (Section 6.1).
//!
//! - **Figure 6** — effectiveness of MCS: the fraction of by-construction
//!   redundant subscriptions that the reduction removes, vs `k`, for
//!   `m ∈ {10, 15, 20}`.
//! - **Figure 7** — `log10` of the theoretical RSPC iteration budget `d`
//!   (δ = 1e-10) computed on the full set vs on the MCS-reduced set.
//!
//! Expected shapes: reduction ≥ ~0.7 everywhere; without MCS `log10 d` is
//! enormous (tens), with MCS it collapses to practical values.

use crate::config::RunConfig;
use crate::figures::{paper_ks, PAPER_MS};
use crate::table::Table;
use psc_core::{ConflictTable, MinimizedCoverSet, WitnessEstimate};
use psc_workload::{seeded_rng, RedundantCoverScenario};
use std::collections::HashSet;

/// The paper's error probability for this experiment.
pub const DELTA: f64 = 1e-10;

/// Runs the sweep and returns `[figure 6 table, figure 7 table]`.
pub fn run(cfg: &RunConfig) -> Vec<Table> {
    let runs = cfg.runs(1000);
    let ks = paper_ks(cfg.size(310));

    let mut fig6_cols: Vec<String> = vec!["k".into()];
    let mut fig7_cols: Vec<String> = vec!["k".into()];
    for m in PAPER_MS {
        fig6_cols.push(format!("m={m}"));
        fig7_cols.push(format!("m={m}"));
        fig7_cols.push(format!("m={m};MCS"));
    }
    let mut fig6 = Table::new(
        format!(
            "Figure 6: redundant-subscription reduction, redundant covering ({runs} runs/point)"
        ),
        &fig6_cols.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    let mut fig7 = Table::new(
        format!("Figure 7: log10(theoretical d), redundant covering, delta = {DELTA:e}"),
        &fig7_cols.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );

    for &k in &ks {
        let mut fig6_row = vec![k as f64];
        let mut fig7_row = vec![k as f64];
        for m in PAPER_MS {
            let scenario = RedundantCoverScenario::new(m, k);
            let mut sum_reduction = 0.0;
            let mut sum_log_d_full = 0.0;
            let mut sum_log_d_mcs = 0.0;
            for run in 0..runs {
                let mut rng = seeded_rng(cfg.point_seed(m as u64, k as u64, run));
                let inst = scenario.generate(&mut rng);

                let table = ConflictTable::build(&inst.s, &inst.set);
                let est_full = WitnessEstimate::from_table(&inst.s, &table);
                sum_log_d_full += est_full.log10_iterations(DELTA);

                let outcome = MinimizedCoverSet::reduce_table(table);
                let redundant: HashSet<usize> = inst.redundant_indices.iter().copied().collect();
                let removed_redundant = outcome
                    .removed
                    .iter()
                    .filter(|i| redundant.contains(i))
                    .count();
                sum_reduction += removed_redundant as f64 / redundant.len() as f64;

                let est_mcs = WitnessEstimate::from_table(&inst.s, &outcome.table);
                sum_log_d_mcs += est_mcs.log10_iterations(DELTA);
            }
            let n = runs as f64;
            fig6_row.push(sum_reduction / n);
            fig7_row.push(sum_log_d_full / n);
            fig7_row.push(sum_log_d_mcs / n);
        }
        fig6.row_values(&fig6_row);
        fig7.row_values(&fig7_row);
    }
    vec![fig6, fig7]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_expected_shapes() {
        let tables = run(&RunConfig::quick());
        assert_eq!(tables.len(), 2);
        let fig6 = &tables[0];
        assert_eq!(fig6.columns.len(), 4);
        assert!(!fig6.rows.is_empty());
        // Reductions are fractions in (0, 1]; the paper reports >= 0.7.
        for row in &fig6.rows {
            for cell in &row[1..] {
                let v: f64 = cell.parse().unwrap();
                assert!((0.0..=1.0).contains(&v), "reduction {v} out of range");
                assert!(v >= 0.5, "reduction {v} suspiciously low");
            }
        }
        // Figure 7: MCS columns are dramatically smaller than full columns.
        let fig7 = &tables[1];
        for row in &fig7.rows {
            for pair in [(1usize, 2usize), (3, 4), (5, 6)] {
                let full: f64 = row[pair.0].parse().unwrap();
                let mcs: f64 = row[pair.1].parse().unwrap();
                assert!(
                    mcs <= full,
                    "MCS budget must not exceed the full budget ({mcs} vs {full})"
                );
            }
        }
    }
}
