//! Proposition 5 / Equation 2: publication-find probability along a broker
//! chain after an erroneous covering decision, analytic vs simulated.

use crate::config::RunConfig;
use crate::table::Table;
use psc_broker::propagation::{find_probability, simulate_chain};
use psc_workload::seeded_rng;

/// Chain lengths swept.
pub const NS: [usize; 5] = [1, 2, 4, 8, 16];

/// Per-broker publication probabilities swept.
pub const RHOS: [f64; 2] = [0.05, 0.2];

/// `(ρw, d)` pairs swept — weak and strong detection regimes.
pub const DETECTIONS: [(f64, u64); 3] = [(0.01, 50), (0.01, 500), (0.05, 100)];

/// Runs the sweep and returns a single comparison table.
pub fn run(cfg: &RunConfig) -> Vec<Table> {
    let runs = cfg.runs(200_000);
    let mut t = Table::new(
        format!("Proposition 5 / Eq. 2: find probability, analytic vs simulated ({runs} runs)"),
        &["n", "rho", "rho_w", "d", "analytic", "simulated", "abs_err"],
    );
    for n in NS {
        for rho in RHOS {
            for (i, (rho_w, d)) in DETECTIONS.into_iter().enumerate() {
                let analytic = find_probability(n, rho, rho_w, d);
                let mut rng = seeded_rng(cfg.point_seed(n as u64, (rho * 100.0) as u64, i as u64));
                let simulated = simulate_chain(n, rho, rho_w, d, runs, &mut rng);
                t.row_values(&[
                    n as f64,
                    rho,
                    rho_w,
                    d as f64,
                    analytic,
                    simulated,
                    (analytic - simulated).abs(),
                ]);
            }
        }
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_and_simulated_agree() {
        let cfg = RunConfig {
            scale: 0.1,
            ..RunConfig::quick()
        };
        let tables = run(&cfg);
        for row in &tables[0].rows {
            let err: f64 = row[6].parse().unwrap();
            assert!(err < 0.02, "analytic/simulated divergence {err}");
        }
    }
}
