//! Tables 3–8 / Figures 2–4: the paper's worked subsumption examples,
//! decided by the full pipeline and cross-checked against the exact checker.

use crate::config::RunConfig;
use crate::table::Table;
use psc_core::{ConflictTable, ExactChecker, SubsumptionChecker};
use psc_model::{Schema, Subscription};
use psc_workload::seeded_rng;

fn schema2() -> Schema {
    Schema::builder()
        .attribute("x1", 800, 900)
        .attribute("x2", 1000, 1010)
        .build()
}

fn sub(schema: &Schema, x1: (i64, i64), x2: (i64, i64)) -> Subscription {
    Subscription::builder(schema)
        .range("x1", x1.0, x1.1)
        .range("x2", x2.0, x2.1)
        .build()
        .expect("example ranges are valid")
}

/// Runs the worked examples and returns `[decisions table, conflict table]`.
pub fn run(cfg: &RunConfig) -> Vec<Table> {
    let schema = schema2();
    // Table 3 / Figure 2: covered by the union.
    let s_a = sub(&schema, (830, 870), (1003, 1006));
    let set_a = vec![
        sub(&schema, (820, 850), (1001, 1007)),
        sub(&schema, (840, 880), (1002, 1009)),
    ];
    // Table 6 / Figure 3: not covered (witness strip above 870).
    let s_b = sub(&schema, (830, 890), (1003, 1006));
    let set_b = vec![
        sub(&schema, (820, 850), (1002, 1009)),
        sub(&schema, (840, 870), (1001, 1007)),
    ];
    // Table 7 / Figure 4: covered, with the conflict-free member s3.
    let s_c = s_a.clone();
    let set_c = vec![
        sub(&schema, (820, 850), (1001, 1007)),
        sub(&schema, (840, 880), (1002, 1009)),
        sub(&schema, (810, 890), (1004, 1005)),
    ];

    let checker = SubsumptionChecker::builder()
        .error_probability(1e-10)
        .build();
    let exact = ExactChecker::default();
    let mut rng = seeded_rng(cfg.point_seed(2, 0, 0));

    let mut decisions = Table::new(
        "Worked examples (Tables 3/6/7): pipeline decision vs exact ground truth",
        &["example", "pipeline", "stage", "exact", "k after MCS"],
    );
    for (name, s, set) in [
        ("Table 3 (covered by union)", &s_a, &set_a),
        ("Table 6 (non-cover)", &s_b, &set_b),
        ("Table 7 (covered + redundant s3)", &s_c, &set_c),
    ] {
        let d = checker.check(s, set, &mut rng);
        let truth = exact.is_covered(s, set).expect("tiny instance");
        assert_eq!(
            d.is_covered(),
            truth,
            "pipeline disagrees with exact on {name}"
        );
        decisions.row(&[
            name,
            if d.is_covered() {
                "covered"
            } else {
                "not covered"
            },
            &format!("{:?}", d.stage),
            if truth { "covered" } else { "not covered" },
            &d.stats.k_after_mcs.to_string(),
        ]);
    }

    // Table 5: the conflict table of the Table 3 example, rendered.
    let mut conflict = Table::new(
        "Table 5: conflict table for s vs {s1, s2} (strips of s left uncovered)",
        &["row", "x1<lo", "x1>hi", "x2<lo", "x2>hi"],
    );
    let t = ConflictTable::build(&s_a, &set_a);
    for (i, row) in t.rows().enumerate() {
        let cell = |attr: usize, side: psc_core::Side| {
            row.cell(psc_model::AttrId(attr), side)
                .map_or("undefined".to_string(), |e| e.strip.to_string())
        };
        conflict.row(&[
            &format!("s{}", i + 1),
            &cell(0, psc_core::Side::Low),
            &cell(0, psc_core::Side::High),
            &cell(1, psc_core::Side::Low),
            &cell(1, psc_core::Side::High),
        ]);
    }
    vec![decisions, conflict]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn examples_match_paper() {
        let tables = run(&RunConfig::quick());
        let decisions = &tables[0];
        assert_eq!(decisions.rows[0][1], "covered");
        assert_eq!(decisions.rows[1][1], "not covered");
        assert_eq!(decisions.rows[2][1], "covered");
        // Table 7's s3 is MCS-redundant: only two survive.
        assert_eq!(decisions.rows[2][4], "2");
        // Table 5 content: exactly the two defined strips of the paper.
        let conflict = &tables[1];
        assert_eq!(conflict.rows[0][2], "[851, 870]"); // s1: x1 > 850
        assert_eq!(conflict.rows[1][1], "[830, 839]"); // s2: x1 < 840
        assert_eq!(conflict.rows[0][1], "undefined");
        assert_eq!(conflict.rows[0][3], "undefined");
    }
}
