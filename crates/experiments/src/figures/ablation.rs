//! Ablation experiment (DESIGN.md §7): which pipeline stage decides, per
//! scenario; and covering vs merging as set-reduction mechanisms.

use crate::config::RunConfig;
use crate::table::Table;
use psc_core::merge::{merge_with_budget, merge_with_total_budget};
use psc_core::{DecisionStage, PairwiseChecker, SubsumptionChecker};
use psc_workload::{
    seeded_rng, ComparisonWorkload, NoIntersectionScenario, NonCoverScenario,
    PairwiseCoverScenario, RedundantCoverScenario,
};

/// Runs both ablations; returns `[stage-mix table, covering-vs-merging]`.
pub fn run(cfg: &RunConfig) -> Vec<Table> {
    vec![stage_mix(cfg), covering_vs_merging(cfg)]
}

/// For each scenario, the fraction of decisions produced by each stage of
/// Algorithm 4 — quantifying the paper's "fast decisions" claim.
fn stage_mix(cfg: &RunConfig) -> Table {
    let runs = cfg.runs(300);
    let checker = SubsumptionChecker::builder()
        .error_probability(1e-8)
        .max_iterations(100_000)
        .build();
    let mut t = Table::new(
        format!("Stage mix: which pipeline stage decides ({runs} runs/scenario, m=10, k=100)"),
        &[
            "scenario",
            "pairwise",
            "corollary3",
            "empty set",
            "cor3 after MCS",
            "RSPC",
        ],
    );

    type ScenarioGen = Box<dyn Fn(u64) -> psc_workload::CoverInstance>;
    let scenarios: Vec<(&str, ScenarioGen)> = vec![
        (
            "pairwise cover (1.a)",
            Box::new(|s| PairwiseCoverScenario::new(10, 100).generate(&mut seeded_rng(s))),
        ),
        (
            "redundant cover (1.b)",
            Box::new(|s| RedundantCoverScenario::new(10, 100).generate(&mut seeded_rng(s))),
        ),
        (
            "no intersection (2.a)",
            Box::new(|s| NoIntersectionScenario::new(10, 100).generate(&mut seeded_rng(s))),
        ),
        (
            "non-cover (2.b)",
            Box::new(|s| NonCoverScenario::new(10, 100).generate(&mut seeded_rng(s))),
        ),
    ];

    for (name, generate) in scenarios {
        let mut counts = [0u64; 5];
        for run in 0..runs {
            let seed = cfg.point_seed(77, run, 0);
            let inst = generate(seed);
            let mut rng = seeded_rng(seed ^ 1);
            let d = checker.check(&inst.s, &inst.set, &mut rng);
            let slot = match d.stage {
                DecisionStage::PairwiseCover => 0,
                DecisionStage::PolyhedronWitness => 1,
                DecisionStage::EmptySet | DecisionStage::EmptyMcs => 2,
                DecisionStage::PolyhedronWitnessAfterMcs => 3,
                DecisionStage::Rspc => 4,
            };
            counts[slot] += 1;
            if let Some(truth) = inst.ground_truth {
                // The strict delta makes disagreement essentially impossible.
                assert_eq!(d.is_covered(), truth, "{name}: wrong decision");
            }
        }
        let frac = |c: u64| -> f64 { c as f64 / runs as f64 };
        t.row_keyed(
            name,
            &[
                frac(counts[0]),
                frac(counts[1]),
                frac(counts[2]),
                frac(counts[3]),
                frac(counts[4]),
            ],
        );
    }
    t
}

/// Covering vs merging on the realistic stream: set size achieved and (for
/// merging) the false-positive volume paid.
fn covering_vs_merging(cfg: &RunConfig) -> Table {
    let n = cfg.size(400);
    let wl = ComparisonWorkload::new(10);
    let mut rng = seeded_rng(cfg.point_seed(78, 0, 0));
    let stream = wl.stream(n, &mut rng);

    let mut t = Table::new(
        format!("Covering vs merging on {n} realistic subscriptions (m=10)"),
        &["mechanism", "final set size", "false-positive budget used"],
    );

    // Pairwise covering.
    let mut pairwise: Vec<_> = Vec::new();
    for s in &stream {
        if !PairwiseChecker.is_covered(s, &pairwise) {
            pairwise.push(s.clone());
        }
    }
    t.row(&["pairwise covering", &pairwise.len().to_string(), "0"]);

    // Group covering (the paper's algorithm).
    let checker = SubsumptionChecker::builder()
        .error_probability(1e-6)
        .max_iterations(2_000)
        .build();
    let mut group: Vec<_> = Vec::new();
    for s in &stream {
        if !checker.check(s, &group, &mut rng).is_covered() {
            group.push(s.clone());
        }
    }
    t.row(&[
        "group covering (δ=1e-6)",
        &group.len().to_string(),
        "~1e-6/decision",
    ]);

    // Perfect merging, then lossy merging on top of pairwise covering.
    let perfect = merge_with_budget(&pairwise, 0.0);
    t.row(&[
        "pairwise + perfect merging",
        &perfect.merged.len().to_string(),
        "0",
    ]);
    let lossy = merge_with_total_budget(&pairwise, 0.10, 0.5);
    t.row(&[
        "pairwise + merging (≤0.10/merge, ≤0.5 total)",
        &lossy.merged.len().to_string(),
        &format!("{:.3}", lossy.waste_budget_used),
    ]);
    // Unbounded compounding, for contrast: per-merge cap only.
    let compounding = merge_with_budget(&pairwise, 0.10);
    t.row(&[
        "pairwise + merging (≤0.10/merge, unbounded)",
        &compounding.merged.len().to_string(),
        &format!("{:.3}", compounding.waste_budget_used),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_mix_rows_sum_to_one_and_fast_paths_dominate() {
        let cfg = RunConfig {
            scale: 0.05,
            size_scale: 1.0,
            ..RunConfig::quick()
        };
        let tables = run(&cfg);
        let mix = &tables[0];
        for row in &mix.rows {
            let sum: f64 = row[1..].iter().map(|c| c.parse::<f64>().unwrap()).sum();
            assert!((sum - 1.0).abs() < 1e-9, "row fractions must sum to 1");
        }
        // Scenario 1.a is decided by Corollary 1 always.
        let pairwise_row = &mix.rows[0];
        assert_eq!(pairwise_row[1].parse::<f64>().unwrap(), 1.0);
        // Scenario 2.a never reaches RSPC.
        let no_int = &mix.rows[2];
        assert_eq!(no_int[5].parse::<f64>().unwrap(), 0.0);
    }

    #[test]
    fn merging_never_grows_the_set() {
        let cfg = RunConfig {
            scale: 0.05,
            size_scale: 0.2,
            ..RunConfig::quick()
        };
        let tables = run(&cfg);
        let cmp = &tables[1];
        let size = |r: usize| -> usize { cmp.rows[r][1].parse().unwrap() };
        assert!(size(2) <= size(0), "perfect merging grew the set");
        assert!(size(3) <= size(2), "lossy merging grew the set");
        assert!(size(1) <= size(0), "group covering must beat pairwise");
    }
}
