//! One module per reproduced figure/table of the paper.

pub mod ablation;
pub mod broker_gains;
pub mod churn;
pub mod fig1;
pub mod fig11_12;
pub mod fig13_14;
pub mod fig2;
pub mod fig6_7;
pub mod fig8_9_10;
pub mod prop5;

/// The attribute counts the paper sweeps in Figures 6–10 and 13–14.
pub const PAPER_MS: [usize; 3] = [10, 15, 20];

/// The subscription-count sweep of Figures 6–10: 10 to 310 in steps of 30.
pub fn paper_ks(max_k: usize) -> Vec<usize> {
    (10..=310)
        .step_by(30)
        .filter(|&k| k <= max_k.max(10))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ks_full_sweep() {
        let ks = paper_ks(310);
        assert_eq!(ks.first(), Some(&10));
        assert_eq!(ks.last(), Some(&310));
        assert_eq!(ks.len(), 11);
    }

    #[test]
    fn paper_ks_scaled_down() {
        assert_eq!(paper_ks(70), vec![10, 40, 70]);
        assert_eq!(paper_ks(5), vec![10], "floor keeps one point");
    }
}
