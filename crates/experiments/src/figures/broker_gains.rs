//! Extension experiment: end-to-end broker-network traffic under the three
//! covering policies on a realistic workload.
//!
//! Not a paper figure per se — it quantifies the distributed-system claim of
//! Sections 2 and 5 (covering reduces subscription traffic and routing-table
//! state; the probabilistic policy reduces it further at a bounded risk of
//! lost deliveries) on a random broker tree fed with the Section 6.4
//! workload.

use crate::config::RunConfig;
use crate::table::Table;
use psc_broker::{BrokerId, CoveringPolicy, Network, Topology};
use psc_model::SubscriptionId;
use psc_workload::{seeded_rng, ComparisonWorkload};
use rand::Rng;

/// Number of brokers in the random tree.
const BROKERS: usize = 25;

/// Runs the experiment and returns a single table.
pub fn run(cfg: &RunConfig) -> Vec<Table> {
    let n_subs = cfg.size(400);
    let n_pubs = cfg.size(300);
    let wl = ComparisonWorkload::new(10);
    let schema = wl.schema();

    let mut t = Table::new(
        format!(
            "Broker network: {BROKERS} brokers, {n_subs} subscriptions, {n_pubs} publications (m = 10)"
        ),
        &[
            "policy",
            "sub msgs",
            "suppressed",
            "table entries",
            "pub msgs",
            "notifications",
            "missed",
        ],
    );

    for policy in [
        CoveringPolicy::Flooding,
        CoveringPolicy::Pairwise,
        CoveringPolicy::group(1e-6),
    ] {
        // Identical workload stream per policy: same seed.
        let mut rng = seeded_rng(cfg.point_seed(99, 0, 0));
        let topology = Topology::random_tree(BROKERS, &mut rng);
        let name = policy.name();
        let mut net = Network::new(topology, policy, cfg.point_seed(99, 1, 0));

        for i in 0..n_subs {
            let at = BrokerId(rng.gen_range(0..BROKERS));
            let sub = wl.subscription(&schema, &mut rng);
            net.subscribe(at, SubscriptionId(i as u64), sub);
        }

        let mut missed = 0u64;
        let mut delivered = 0u64;
        for _ in 0..n_pubs {
            let at = BrokerId(rng.gen_range(0..BROKERS));
            let p = wl.publication(&schema, &mut rng);
            let report = net.publish(at, &p);
            let expected = net.expected_recipients(&p);
            delivered += report.delivered_to.len() as u64;
            missed += (expected.len().saturating_sub(report.delivered_to.len())) as u64;
        }

        let m = net.metrics();
        t.row(&[
            name,
            &m.subscription_messages.to_string(),
            &m.subscriptions_suppressed.to_string(),
            &m.table_entries.to_string(),
            &m.publication_messages.to_string(),
            &delivered.to_string(),
            &missed.to_string(),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covering_reduces_traffic_without_losses_for_deterministic_policies() {
        let tables = run(&RunConfig::quick());
        let t = &tables[0];
        assert_eq!(t.rows.len(), 3);
        let get = |r: usize, c: usize| -> u64 { t.rows[r][c].parse().unwrap() };
        // Flooding row: no suppression, no misses.
        assert_eq!(get(0, 2), 0);
        assert_eq!(get(0, 6), 0);
        // Pairwise: strictly less subscription traffic, still no misses.
        assert!(get(1, 1) < get(0, 1));
        assert_eq!(get(1, 6), 0);
        // Group: at most pairwise traffic; misses bounded (tiny delta).
        assert!(get(2, 1) <= get(1, 1));
        // Deliveries happen at all under every policy.
        assert!(get(0, 5) > 0);
    }
}
