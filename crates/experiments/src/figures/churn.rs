//! Extension experiment: subscription churn on a broker network.
//!
//! The paper motivates probabilistic subsumption with *highly changeable*
//! subscriptions (MANETs, sensors, mobile users — Sections 1 and 3) but only
//! evaluates static sets. This experiment drives the broker network with a
//! subscribe/unsubscribe/publish trace and measures, per covering policy,
//! the full dynamic cost: subscription + unsubscription traffic, promotions
//! of previously suppressed subscriptions, steady-state table size, and
//! delivery completeness.

use crate::config::RunConfig;
use crate::table::Table;
use psc_broker::{BrokerId, CoveringPolicy, Network, Topology};
use psc_workload::{seeded_rng, ChurnTrace, Event};
use rand::Rng;

/// Number of brokers in the random tree.
const BROKERS: usize = 20;

/// Runs the churn trace under each policy; returns one summary table.
pub fn run(cfg: &RunConfig) -> Vec<Table> {
    let n_events = cfg.size(3_000);
    let trace = ChurnTrace::new(8);

    let mut t = Table::new(
        format!(
            "Churn: {BROKERS} brokers, {n_events} events (subscribe/unsubscribe/publish ≈ 2/1/7)"
        ),
        &[
            "policy",
            "sub msgs",
            "unsub msgs",
            "suppressed",
            "promoted",
            "final table",
            "notifications",
            "missed",
        ],
    );

    for policy in [
        CoveringPolicy::Flooding,
        CoveringPolicy::Pairwise,
        CoveringPolicy::group(1e-6),
    ] {
        let name = policy.name();
        // Same trace and same broker placement for every policy.
        let mut rng = seeded_rng(cfg.point_seed(55, 0, 0));
        let topology = Topology::random_tree(BROKERS, &mut rng);
        let events = trace.generate(n_events, &mut rng);
        let mut placement = seeded_rng(cfg.point_seed(55, 1, 0));

        let mut net = Network::new(topology, policy, cfg.point_seed(55, 2, 0));
        let mut notifications = 0u64;
        let mut missed = 0u64;
        for event in events {
            match event {
                Event::Subscribe(id, sub) => {
                    let at = BrokerId(placement.gen_range(0..BROKERS));
                    net.subscribe(at, id, sub);
                }
                Event::Unsubscribe(id) => {
                    let removed = net.unsubscribe(id);
                    debug_assert!(removed, "trace only cancels live ids");
                }
                Event::Publish(p) => {
                    let at = BrokerId(placement.gen_range(0..BROKERS));
                    let delivered = net.publish(at, &p).delivered_to.len();
                    let expected = net.expected_recipients(&p).len();
                    notifications += delivered as u64;
                    missed += (expected.saturating_sub(delivered)) as u64;
                }
            }
        }
        let m = net.metrics();
        t.row(&[
            name,
            &m.subscription_messages.to_string(),
            &m.unsubscription_messages.to_string(),
            &m.subscriptions_suppressed.to_string(),
            &m.subscriptions_promoted.to_string(),
            &m.table_entries.to_string(),
            &notifications.to_string(),
            &missed.to_string(),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_preserves_deliveries_for_deterministic_policies() {
        let tables = run(&RunConfig::quick());
        let t = &tables[0];
        assert_eq!(t.rows.len(), 3);
        let get = |r: usize, c: usize| -> u64 { t.rows[r][c].parse().unwrap() };
        // Flooding and pairwise must miss nothing, ever.
        assert_eq!(get(0, 7), 0, "flooding missed deliveries");
        assert_eq!(get(1, 7), 0, "pairwise missed deliveries");
        // Identical notification counts across deterministic policies.
        assert_eq!(get(0, 6), get(1, 6));
        // Covering reduces subscription traffic even with churn.
        assert!(get(1, 1) < get(0, 1));
        assert!(get(2, 1) <= get(1, 1));
        // Flooding never suppresses, hence never promotes.
        assert_eq!(get(0, 3), 0);
        assert_eq!(get(0, 4), 0);
    }
}
