//! Figures 13 and 14: the comparison scenario (Section 6.4).
//!
//! A realistic stream of 5000 subscriptions (Zipf attribute popularity,
//! Pareto range centers, Normal range widths) is filtered by two policies:
//!
//! - **pairwise** — drop a new subscription only when a single active
//!   subscription covers it (the classical baseline);
//! - **group** — drop it when the probabilistic checker (δ = 1e-6) declares
//!   it covered by the *union* of active subscriptions.
//!
//! **Figure 13** plots the active-set size vs arrivals for `m ∈ {10,15,20}`;
//! **Figure 14** the group/pairwise size ratio. Expected shape: group is
//! uniformly below pairwise; the ratio falls to ~0.7–0.8 by 1000 arrivals
//! and keeps slowly decreasing; reduction weakens as `m` grows.

use crate::config::RunConfig;
use crate::figures::PAPER_MS;
use crate::table::Table;
use psc_core::{ActiveSet, AdmissionPolicy, SubsumptionChecker};
use psc_workload::{seeded_rng, ComparisonWorkload};

/// The paper's error probability for the comparison.
pub const DELTA: f64 = 1e-6;

/// RSPC iteration cap for stream processing; the achieved error bound is
/// reported by the engine when the cap truncates the theoretical budget.
const ITERATION_CAP: u64 = 2_000;

/// Runs the streams and returns `[figure 13, figure 14]`.
pub fn run(cfg: &RunConfig) -> Vec<Table> {
    let n = cfg.size(5000);
    let checkpoints: Vec<usize> = {
        let step = (n / 20).max(1);
        (1..=n).filter(|i| i % step == 0 || *i == n).collect()
    };

    let mut fig13_cols: Vec<String> = vec!["arrivals".into()];
    let mut fig14_cols: Vec<String> = vec!["arrivals".into()];
    for m in PAPER_MS {
        fig13_cols.push(format!("m={m} pairwise"));
        fig13_cols.push(format!("m={m} group"));
        fig14_cols.push(format!("m={m}"));
    }
    let mut fig13 = Table::new(
        format!(
            "Figure 13: active-set growth, pairwise vs group ({n} arrivals, delta = {DELTA:e})"
        ),
        &fig13_cols.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    let mut fig14 = Table::new(
        "Figure 14: group/pairwise active-set size ratio",
        &fig14_cols.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );

    // series[m_index] = (pairwise sizes, group sizes) at each checkpoint.
    let mut series: Vec<(Vec<usize>, Vec<usize>)> = Vec::new();
    for (mi, m) in PAPER_MS.into_iter().enumerate() {
        let wl = ComparisonWorkload::new(m);
        let mut rng = seeded_rng(cfg.point_seed(13, mi as u64, 0));
        let stream = wl.stream(n, &mut rng);

        let checker = SubsumptionChecker::builder()
            .error_probability(DELTA)
            .max_iterations(ITERATION_CAP)
            .build();
        let mut pairwise = ActiveSet::new(AdmissionPolicy::Pairwise, checker);
        let mut group = ActiveSet::new(AdmissionPolicy::Group, checker);
        let mut pw_sizes = Vec::with_capacity(checkpoints.len());
        let mut gr_sizes = Vec::with_capacity(checkpoints.len());

        let mut next_cp = 0;
        for (i, sub) in stream.into_iter().enumerate() {
            pairwise.offer(sub.clone(), &mut rng);
            group.offer(sub, &mut rng);
            if next_cp < checkpoints.len() && i + 1 == checkpoints[next_cp] {
                pw_sizes.push(pairwise.len());
                gr_sizes.push(group.len());
                next_cp += 1;
            }
        }
        series.push((pw_sizes, gr_sizes));
    }

    for (ci, &cp) in checkpoints.iter().enumerate() {
        let mut row13 = vec![cp as f64];
        let mut row14 = vec![cp as f64];
        for (pw, gr) in &series {
            row13.push(pw[ci] as f64);
            row13.push(gr[ci] as f64);
            row14.push(gr[ci] as f64 / pw[ci] as f64);
        }
        fig13.row_values(&row13);
        fig14.row_values(&row14);
    }
    vec![fig13, fig14]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_group_beats_pairwise() {
        let tables = run(&RunConfig::quick());
        assert_eq!(tables.len(), 2);
        let fig13 = &tables[0];
        let last = fig13.rows.last().unwrap();
        // For every m: group size <= pairwise size at the end of the stream.
        for pair in [(1usize, 2usize), (3, 4), (5, 6)] {
            let pw: f64 = last[pair.0].parse().unwrap();
            let gr: f64 = last[pair.1].parse().unwrap();
            assert!(gr <= pw, "group {gr} must not exceed pairwise {pw}");
            assert!(pw >= 1.0);
        }
        // Ratios are within (0, 1].
        for row in &tables[1].rows {
            for cell in &row[1..] {
                let v: f64 = cell.parse().unwrap();
                assert!(v > 0.0 && v <= 1.0, "ratio {v} out of range");
            }
        }
    }
}
