//! A small result-table type with aligned-text and CSV rendering.

use std::fmt;

/// A labelled table of experiment results.
///
/// # Example
/// ```
/// use psc_experiments::Table;
/// let mut t = Table::new("demo", &["k", "reduction"]);
/// t.row(&["10", "0.95"]);
/// t.row_values(&[40.0, 0.97]);
/// assert!(t.to_csv().starts_with("k,reduction\n10,0.95\n"));
/// assert!(t.to_string().contains("demo"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Table title (figure name + description).
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Row-major cells, each row as long as `columns`.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of preformatted cells.
    ///
    /// # Panics
    /// Panics if the arity differs from the header.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Appends a row of numbers, formatted compactly (up to 4 significant
    /// decimals, integers without a fraction).
    ///
    /// # Panics
    /// Panics if the arity differs from the header.
    pub fn row_values(&mut self, values: &[f64]) {
        assert_eq!(values.len(), self.columns.len(), "row arity mismatch");
        self.rows
            .push(values.iter().map(|v| format_value(*v)).collect());
    }

    /// Appends a row with a string key followed by numbers.
    ///
    /// # Panics
    /// Panics if the arity differs from the header.
    pub fn row_keyed(&mut self, key: &str, values: &[f64]) {
        assert_eq!(values.len() + 1, self.columns.len(), "row arity mismatch");
        let mut cells = vec![key.to_string()];
        cells.extend(values.iter().map(|v| format_value(*v)));
        self.rows.push(cells);
    }

    /// Renders as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.columns.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats one value: integers plainly, NaN as `-`, infinities as `inf`,
/// everything else with four significant decimals.
pub fn format_value(v: f64) -> String {
    if v.is_nan() {
        "-".to_string()
    } else if v.is_infinite() {
        if v > 0.0 {
            "inf".into()
        } else {
            "-inf".into()
        }
    } else if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.4}")
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &self.columns)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_csv() {
        let mut t = Table::new("t", &["a", "long_header"]);
        t.row(&["1", "2"]);
        t.row_values(&[2.78458, 10.0]);
        let text = t.to_string();
        assert!(text.contains("long_header"));
        assert_eq!(t.to_csv(), "a,long_header\n1,2\n2.7846,10\n");
    }

    #[test]
    fn value_formatting() {
        assert_eq!(format_value(5.0), "5");
        assert_eq!(format_value(0.25), "0.2500");
        assert_eq!(format_value(f64::NAN), "-");
        assert_eq!(format_value(f64::INFINITY), "inf");
        assert_eq!(format_value(f64::NEG_INFINITY), "-inf");
    }

    #[test]
    fn row_keyed_prepends_key() {
        let mut t = Table::new("t", &["name", "x"]);
        t.row_keyed("m=10", &[1.5]);
        assert_eq!(t.rows[0], vec!["m=10".to_string(), "1.5000".to_string()]);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new("t", &["a"]);
        t.row(&["1", "2"]);
    }
}
