//! CLI driver regenerating the paper's figures.
//!
//! ```text
//! run-experiments [--exp NAME|all] [--quick] [--seed N] [--scale F]
//!                 [--size-scale F] [--out DIR]
//! ```
//!
//! Tables print to stdout and are written as CSV under `--out`
//! (default `experiments-output/`).

use psc_experiments::{available_experiments, run_experiment, RunConfig};
use std::path::PathBuf;
use std::time::Instant;

struct Args {
    experiments: Vec<String>,
    config: RunConfig,
    out_dir: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut experiments = vec!["all".to_string()];
    let mut config = RunConfig::default();
    let mut out_dir = PathBuf::from("experiments-output");

    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let take_value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            argv.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value after {}", argv[*i - 1]))
        };
        match argv[i].as_str() {
            "--exp" => experiments = vec![take_value(&mut i)?],
            "--quick" => {
                config = RunConfig {
                    seed: config.seed,
                    ..RunConfig::quick()
                }
            }
            "--seed" => {
                config.seed = take_value(&mut i)?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--scale" => {
                config.scale = take_value(&mut i)?
                    .parse()
                    .map_err(|e| format!("bad --scale: {e}"))?
            }
            "--size-scale" => {
                config.size_scale = take_value(&mut i)?
                    .parse()
                    .map_err(|e| format!("bad --size-scale: {e}"))?
            }
            "--out" => out_dir = PathBuf::from(take_value(&mut i)?),
            "--help" | "-h" => {
                println!(
                    "usage: run-experiments [--exp NAME|all] [--quick] [--seed N] \
                     [--scale F] [--size-scale F] [--out DIR]\n\navailable experiments: {}",
                    available_experiments().join(", ")
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
        i += 1;
    }
    if experiments == ["all"] {
        experiments = available_experiments()
            .iter()
            .map(|s| s.to_string())
            .collect();
    }
    Ok(Args {
        experiments,
        config,
        out_dir,
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = std::fs::create_dir_all(&args.out_dir) {
        eprintln!("error: cannot create {}: {e}", args.out_dir.display());
        std::process::exit(1);
    }

    for name in &args.experiments {
        let start = Instant::now();
        match run_experiment(name, &args.config) {
            None => {
                eprintln!(
                    "error: unknown experiment `{name}`; available: {}",
                    available_experiments().join(", ")
                );
                std::process::exit(2);
            }
            Some(tables) => {
                println!("\n### experiment {name} ({:.1?})\n", start.elapsed());
                for (i, table) in tables.iter().enumerate() {
                    println!("{table}");
                    let file = args
                        .out_dir
                        .join(format!("{}-{}.csv", name.replace('/', "_"), i));
                    if let Err(e) = std::fs::write(&file, table.to_csv()) {
                        eprintln!("warning: cannot write {}: {e}", file.display());
                    }
                }
            }
        }
    }
}
