//! Experiment registry and dispatch.

use crate::config::RunConfig;
use crate::figures;
use crate::table::Table;

/// All registered experiment names, in suggested run order.
pub fn available_experiments() -> Vec<&'static str> {
    vec![
        "fig2", "fig1", "fig6-7", "fig8-10", "fig11-12", "fig13-14", "prop5", "broker", "churn",
        "ablation",
    ]
}

/// Runs one experiment by name; `None` for unknown names.
///
/// Accepts individual aliases (`fig6`, `fig7`, …) for grouped experiments.
pub fn run_experiment(name: &str, cfg: &RunConfig) -> Option<Vec<Table>> {
    let tables = match name {
        "fig2" | "fig3" | "fig4" | "tables" => figures::fig2::run(cfg),
        "fig1" => figures::fig1::run(cfg),
        "fig6-7" | "fig6" | "fig7" => figures::fig6_7::run(cfg),
        "fig8-10" | "fig8" | "fig9" | "fig10" => figures::fig8_9_10::run(cfg),
        "fig11-12" | "fig11" | "fig12" => figures::fig11_12::run(cfg),
        "fig13-14" | "fig13" | "fig14" => figures::fig13_14::run(cfg),
        "prop5" | "fig5" | "eq2" => figures::prop5::run(cfg),
        "broker" | "broker-gains" => figures::broker_gains::run(cfg),
        "churn" => figures::churn::run(cfg),
        "ablation" | "stage-mix" => figures::ablation::run(cfg),
        _ => return None,
    };
    Some(tables)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_experiment_dispatches() {
        // Dispatch-only check with the cheapest experiments; heavy ones are
        // covered by their own module tests.
        assert!(run_experiment("fig2", &RunConfig::quick()).is_some());
        assert!(run_experiment("fig1", &RunConfig::quick()).is_some());
        assert!(run_experiment("nope", &RunConfig::quick()).is_none());
        assert_eq!(available_experiments().len(), 10);
    }

    #[test]
    fn aliases_resolve() {
        let cfg = RunConfig::quick();
        assert!(run_experiment("eq2", &cfg).is_some());
        assert!(run_experiment("tables", &cfg).is_some());
    }
}
