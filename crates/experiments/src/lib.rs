//! # psc-experiments
//!
//! The reproduction harness: one module per figure of the Middleware 2006
//! subsumption paper, each regenerating the series the paper plots as a
//! plain-text/CSV table.
//!
//! | Experiment | Paper artifact | Module |
//! |---|---|---|
//! | `fig2` | Table 3/5 worked example | [`figures::fig2`] |
//! | `fig1` | Figure 1 broker example | [`figures::fig1`] |
//! | `fig6`, `fig7` | redundant covering: MCS reduction, log₁₀ d | [`figures::fig6_7`] |
//! | `fig8`, `fig9`, `fig10` | non-cover: reduction, log₁₀ d, actual iterations | [`figures::fig8_9_10`] |
//! | `fig11`, `fig12` | extreme non-cover: iterations, false decisions | [`figures::fig11_12`] |
//! | `fig13`, `fig14` | pairwise vs group set growth and ratio | [`figures::fig13_14`] |
//! | `prop5` | Equation 2 vs chain simulation | [`figures::prop5`] |
//! | `broker` | end-to-end traffic across policies (extension) | [`figures::broker_gains`] |
//!
//! Run them all with the `run-experiments` binary:
//!
//! ```text
//! cargo run --release -p psc-experiments --bin run-experiments -- --exp all
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod config;
pub mod figures;
pub mod runner;
pub mod table;

pub use config::RunConfig;
pub use runner::{available_experiments, run_experiment};
pub use table::Table;
