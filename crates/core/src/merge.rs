//! Subscription merging — the complementary traffic-reduction mechanism the
//! paper contrasts with (Section 7, refs \[8\] and \[9\]).
//!
//! Where covering drops a subscription implied by others, *merging* replaces
//! several subscriptions by their bounding box. Merging can fire when
//! covering cannot, but it is lossy: the bounding box may admit publications
//! nobody asked for (false positives), trading precision for state. This
//! module implements:
//!
//! - **perfect merges** ([`try_perfect_merge`]): two rectangles whose union
//!   *is* a rectangle merge without any precision loss (the modified-BDD
//!   merging of ref \[8\] fires exactly on these: at most one attribute
//!   differs, and there the ranges are adjacent or overlapping);
//! - **lossy merges** with an explicit false-positive budget
//!   ([`merge_with_budget`]): greedy pairwise merging that only accepts a
//!   merge whose *waste* — the fraction of the bounding box not covered by
//!   the union of the two inputs — stays under a threshold.
//!
//! The bench suite uses this to quantify covering-vs-merging trade-offs.

use psc_model::{Range, Subscription};

/// The bounding box (per-attribute range hull) of two subscriptions.
pub fn bounding_box(a: &Subscription, b: &Subscription) -> Subscription {
    debug_assert_eq!(a.arity(), b.arity());
    let ranges = a
        .ranges()
        .iter()
        .zip(b.ranges())
        .map(|(ra, rb)| {
            Range::new(ra.lo().min(rb.lo()), ra.hi().max(rb.hi())).expect("hull is ordered")
        })
        .collect();
    Subscription::from_ranges(a.schema(), ranges).expect("hull within domains")
}

/// Fraction of the bounding box of `a` and `b` covered by neither input —
/// the false-positive volume a merge would introduce, in `[0, 1)`.
///
/// Exact via inclusion–exclusion on rectangles:
/// `waste = 1 − (|a| + |b| − |a∩b|) / |hull|`, computed in log-space safe
/// arithmetic.
pub fn merge_waste(a: &Subscription, b: &Subscription) -> f64 {
    let hull = bounding_box(a, b);
    let hull_size = hull.size();
    let va = a.size().ratio(&hull_size);
    let vb = b.size().ratio(&hull_size);
    let vab = a
        .intersection(b)
        .map_or(0.0, |i| i.size().ratio(&hull_size));
    let waste = (1.0 - (va + vb - vab)).clamp(0.0, 1.0);
    // Log-space round-trips leave ~1e-16 residue on exact covers; snap it.
    if waste < 1e-9 {
        0.0
    } else {
        waste
    }
}

/// Merges `a` and `b` exactly when their union is itself a rectangle
/// (zero-waste merge). Returns `None` otherwise.
///
/// This is the classical merge rule: the two subscriptions agree on all
/// attributes except at most one, where their ranges overlap or are
/// adjacent.
pub fn try_perfect_merge(a: &Subscription, b: &Subscription) -> Option<Subscription> {
    debug_assert_eq!(a.arity(), b.arity());
    // Containment cases are trivially perfect.
    if a.covers(b) {
        return Some(a.clone());
    }
    if b.covers(a) {
        return Some(b.clone());
    }
    let mut differing = None;
    for (j, (ra, rb)) in a.ranges().iter().zip(b.ranges()).enumerate() {
        if ra != rb {
            if differing.is_some() {
                return None; // two differing attributes: union is not a box
            }
            differing = Some(j);
        }
    }
    let j = differing.expect("identical subscriptions are caught by covers()");
    let (ra, rb) = (&a.ranges()[j], &b.ranges()[j]);
    // Union of the two ranges must be an interval: overlap or adjacency.
    let adjacent_or_overlapping =
        ra.intersects(rb) || ra.hi() + 1 == rb.lo() || rb.hi() + 1 == ra.lo();
    if !adjacent_or_overlapping {
        return None;
    }
    Some(bounding_box(a, b))
}

/// Outcome of a greedy merge pass.
#[derive(Debug, Clone)]
pub struct MergeOutcome {
    /// The merged subscription set.
    pub merged: Vec<Subscription>,
    /// Number of merge operations performed.
    pub merges: usize,
    /// Upper bound on the total false-positive volume introduced, as the sum
    /// of per-merge waste fractions (0 for perfect merges only).
    pub waste_budget_used: f64,
}

/// Greedy pairwise merging: repeatedly merges the pair with the smallest
/// waste, as long as that waste is at most `max_waste` (use `0.0` for
/// perfect merges only). `O(k³)` in the worst case — merging is a
/// subscription-churn-time operation, like covering.
///
/// Beware that per-merge waste *compounds*: each accepted merge creates a
/// bigger hull whose next merge is measured against the already-diluted
/// union, so a long chain of ≤ `max_waste` merges can wash out the whole
/// set. Use [`merge_with_total_budget`] to bound the cumulative loss.
pub fn merge_with_budget(set: &[Subscription], max_waste: f64) -> MergeOutcome {
    merge_with_total_budget(set, max_waste, f64::INFINITY)
}

/// Like [`merge_with_budget`], but additionally stops once the *sum* of
/// accepted per-merge wastes would exceed `total_budget` — the global
/// false-positive allowance of refs \[8, 9\]'s merging schemes.
pub fn merge_with_total_budget(
    set: &[Subscription],
    max_waste: f64,
    total_budget: f64,
) -> MergeOutcome {
    assert!(
        (0.0..=1.0).contains(&max_waste),
        "max_waste must be in [0, 1]"
    );
    assert!(total_budget >= 0.0, "total_budget must be non-negative");
    let mut merged: Vec<Subscription> = set.to_vec();
    let mut merges = 0;
    let mut waste_budget_used = 0.0;
    loop {
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..merged.len() {
            for j in (i + 1)..merged.len() {
                let w = merge_waste(&merged[i], &merged[j]);
                if w <= max_waste
                    && waste_budget_used + w <= total_budget
                    && best.is_none_or(|(_, _, bw)| w < bw)
                {
                    best = Some((i, j, w));
                }
            }
        }
        let Some((i, j, w)) = best else { break };
        let hull = bounding_box(&merged[i], &merged[j]);
        merged.swap_remove(j); // j > i, so i stays valid
        merged[i] = hull;
        merges += 1;
        waste_budget_used += w;
    }
    MergeOutcome {
        merged,
        merges,
        waste_budget_used,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psc_model::Schema;

    fn schema2() -> Schema {
        Schema::uniform(2, 0, 99)
    }

    fn sub(schema: &Schema, x0: (i64, i64), x1: (i64, i64)) -> Subscription {
        Subscription::builder(schema)
            .range("x0", x0.0, x0.1)
            .range("x1", x1.0, x1.1)
            .build()
            .unwrap()
    }

    #[test]
    fn perfect_merge_of_adjacent_slabs() {
        let schema = schema2();
        let a = sub(&schema, (0, 49), (10, 20));
        let b = sub(&schema, (50, 99), (10, 20));
        let m = try_perfect_merge(&a, &b).expect("adjacent slabs merge");
        assert_eq!(m, sub(&schema, (0, 99), (10, 20)));
        assert_eq!(merge_waste(&a, &b), 0.0);
    }

    #[test]
    fn perfect_merge_of_overlapping_slabs() {
        let schema = schema2();
        let a = sub(&schema, (0, 60), (10, 20));
        let b = sub(&schema, (40, 99), (10, 20));
        assert!(try_perfect_merge(&a, &b).is_some());
    }

    #[test]
    fn no_perfect_merge_with_gap_or_two_differences() {
        let schema = schema2();
        let a = sub(&schema, (0, 40), (10, 20));
        let gap = sub(&schema, (42, 99), (10, 20));
        assert_eq!(try_perfect_merge(&a, &gap), None);
        let diag = sub(&schema, (50, 99), (30, 40));
        assert_eq!(try_perfect_merge(&a, &diag), None);
        assert!(merge_waste(&a, &diag) > 0.0);
    }

    #[test]
    fn containment_merges_to_the_larger() {
        let schema = schema2();
        let big = sub(&schema, (0, 99), (0, 99));
        let small = sub(&schema, (10, 20), (10, 20));
        assert_eq!(try_perfect_merge(&big, &small), Some(big.clone()));
        assert_eq!(try_perfect_merge(&small, &big), Some(big));
    }

    #[test]
    fn waste_is_exact_for_diagonal_squares() {
        // Two 10×10 squares at opposite corners of a 20×20 hull:
        // waste = 1 − 200/400 = 0.5.
        let schema = schema2();
        let a = sub(&schema, (0, 9), (0, 9));
        let b = sub(&schema, (10, 19), (10, 19));
        assert!((merge_waste(&a, &b) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn greedy_zero_budget_only_does_perfect_merges() {
        let schema = schema2();
        let set = vec![
            sub(&schema, (0, 49), (10, 20)),
            sub(&schema, (50, 99), (10, 20)),
            sub(&schema, (0, 9), (80, 99)), // cannot merge with anything
        ];
        let out = merge_with_budget(&set, 0.0);
        assert_eq!(out.merges, 1);
        assert_eq!(out.merged.len(), 2);
        assert_eq!(out.waste_budget_used, 0.0);
        assert!(out.merged.contains(&sub(&schema, (0, 99), (10, 20))));
    }

    #[test]
    fn greedy_budget_allows_lossy_merges() {
        let schema = schema2();
        let set = vec![
            sub(&schema, (0, 9), (0, 9)),
            sub(&schema, (0, 9), (12, 21)), // small gap on x1: waste ≈ 2/22
            sub(&schema, (70, 99), (70, 99)),
        ];
        let strict = merge_with_budget(&set, 0.0);
        assert_eq!(strict.merges, 0);
        let loose = merge_with_budget(&set, 0.15);
        assert_eq!(loose.merges, 1);
        assert!(loose.waste_budget_used > 0.0 && loose.waste_budget_used <= 0.15);
        // The far square is never merged at this budget.
        assert_eq!(loose.merged.len(), 2);
    }

    #[test]
    fn merged_set_covers_original_set() {
        let schema = schema2();
        let set = vec![
            sub(&schema, (0, 30), (0, 30)),
            sub(&schema, (20, 60), (10, 40)),
            sub(&schema, (55, 99), (35, 80)),
        ];
        let out = merge_with_budget(&set, 0.4);
        for original in &set {
            assert!(
                out.merged.iter().any(|m| m.covers(original)),
                "merge must never lose subscription space"
            );
        }
    }

    #[test]
    fn total_budget_caps_compounding() {
        // A diagonal staircase of squares: each adjacent merge costs ~0.5
        // waste; an unbounded per-merge threshold of 0.8 would collapse the
        // whole set, a total budget of 0.6 allows only one merge.
        let schema = schema2();
        let stairs: Vec<Subscription> = (0..5)
            .map(|i| sub(&schema, (i * 10, i * 10 + 9), (i * 10, i * 10 + 9)))
            .collect();
        let unbounded = merge_with_budget(&stairs, 0.8);
        assert!(
            unbounded.merged.len() <= 2,
            "compounding should collapse the set"
        );
        let capped = merge_with_total_budget(&stairs, 0.8, 0.6);
        assert_eq!(capped.merges, 1);
        assert_eq!(capped.merged.len(), 4);
        assert!(capped.waste_budget_used <= 0.6);
    }

    #[test]
    fn waste_budget_respects_log_volume_sizes() {
        // Sanity: LogVolume ratio path agrees with exact counts.
        let schema = schema2();
        let a = sub(&schema, (0, 9), (0, 9));
        let b = sub(&schema, (5, 14), (0, 9));
        let hull = bounding_box(&a, &b);
        assert_eq!(hull.size_exact(), Some(150));
        // |a| + |b| − |a∩b| = 100 + 100 − 50 = 150 → waste 0.
        assert!((merge_waste(&a, &b)).abs() < 1e-9);
    }
}
