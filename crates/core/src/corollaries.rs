//! Deterministic decision rules read directly off the conflict table
//! (Corollaries 1–3 of the paper).

use crate::conflict::ConflictTable;

/// Corollary 1: if every entry of row `i` is undefined, `s ⊑ si` — the new
/// subscription is covered *pairwise* by a single existing subscription.
///
/// Returns the index of the first covering subscription, if any. Cost
/// `O(m·k)` — the same as building the table — making this the cheapest
/// possible YES.
pub fn pairwise_cover(table: &ConflictTable) -> Option<usize> {
    table.rows().position(|r| r.all_undefined())
}

/// Corollary 2: if every entry of row `i` is defined, `s` strictly covers
/// `si` on all attributes. Returns all such row indices.
///
/// This does not answer the subsumption question for `s`, but it identifies
/// existing subscriptions made redundant *by the new subscription* — useful
/// for set maintenance in brokers (the covered subscription can be demoted).
pub fn reverse_covered(table: &ConflictTable) -> Vec<usize> {
    table
        .rows()
        .enumerate()
        .filter_map(|(i, r)| r.all_defined().then_some(i))
        .collect()
}

/// Corollary 3: sort the defined-entry counts `t_i` ascending; if the `j`-th
/// smallest (1-based) satisfies `t_{i_j} ≥ j` for every `j`, a polyhedron
/// witness exists and `s` is **not** covered by `S`.
///
/// Intuition (the paper's proof sketch): pick any defined entry of the
/// sparsest row for the witness; it conflicts with at most one entry in each
/// other row, and every other row has enough defined entries to always leave
/// a compatible choice.
///
/// This is a *sufficient* condition only: returning `false` says nothing.
pub fn polyhedron_witness_exists(table: &ConflictTable) -> bool {
    if table.is_empty() {
        // No subscriptions at all: a non-empty s is trivially uncovered.
        return true;
    }
    let mut counts = table.defined_counts();
    counts.sort_unstable();
    counts.iter().enumerate().all(|(idx, &t)| t > idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psc_model::{Schema, Subscription};

    fn schema2() -> Schema {
        Schema::builder()
            .attribute("x1", 800, 900)
            .attribute("x2", 1000, 1010)
            .build()
    }

    fn sub(schema: &Schema, x1: (i64, i64), x2: (i64, i64)) -> Subscription {
        Subscription::builder(schema)
            .range("x1", x1.0, x1.1)
            .range("x2", x2.0, x2.1)
            .build()
            .unwrap()
    }

    #[test]
    fn corollary1_finds_covering_row() {
        let schema = schema2();
        let s = sub(&schema, (830, 870), (1003, 1006));
        let narrow = sub(&schema, (840, 860), (1004, 1005));
        let wide = sub(&schema, (800, 900), (1000, 1010));
        let t = ConflictTable::build(&s, &[narrow, wide]);
        assert_eq!(pairwise_cover(&t), Some(1));
    }

    #[test]
    fn corollary1_none_when_no_single_cover() {
        let schema = schema2();
        let s = sub(&schema, (830, 870), (1003, 1006));
        let s1 = sub(&schema, (820, 850), (1001, 1007));
        let s2 = sub(&schema, (840, 880), (1002, 1009));
        let t = ConflictTable::build(&s, &[s1, s2]);
        assert_eq!(pairwise_cover(&t), None);
    }

    #[test]
    fn corollary2_identifies_rows_covered_by_s() {
        let schema = schema2();
        let s = sub(&schema, (810, 890), (1001, 1009));
        let inner = sub(&schema, (830, 870), (1003, 1006));
        let partial = sub(&schema, (805, 850), (1002, 1005));
        let t = ConflictTable::build(&s, &[inner, partial]);
        assert_eq!(reverse_covered(&t), vec![0]);
    }

    #[test]
    fn corollary3_detects_witness_in_figure3_setting() {
        // Figure 3: s extends past both s1 and s2 on x1's high side.
        let schema = schema2();
        let s = sub(&schema, (830, 890), (1003, 1006));
        let s1 = sub(&schema, (820, 850), (1002, 1009));
        let s2 = sub(&schema, (840, 870), (1001, 1007));
        let t = ConflictTable::build(&s, &[s1, s2]);
        // t = [1, 2] sorted: t_1 = 1 ≥ 1, t_2 = 2 ≥ 2 → witness exists.
        assert_eq!(t.defined_counts(), vec![1, 2]);
        assert!(polyhedron_witness_exists(&t));
    }

    #[test]
    fn corollary3_no_decision_for_covered_case() {
        // Table 3: s is covered, and the sorted counts [1, 1] fail at j=2.
        let schema = schema2();
        let s = sub(&schema, (830, 870), (1003, 1006));
        let s1 = sub(&schema, (820, 850), (1001, 1007));
        let s2 = sub(&schema, (840, 880), (1002, 1009));
        let t = ConflictTable::build(&s, &[s1, s2]);
        assert!(!polyhedron_witness_exists(&t));
    }

    #[test]
    fn corollary3_fails_fast_with_pairwise_covered_row() {
        // A row with t_i = 0 sorts first and 0 < 1.
        let schema = schema2();
        let s = sub(&schema, (830, 870), (1003, 1006));
        let cover = sub(&schema, (800, 900), (1000, 1010));
        let other = sub(&schema, (840, 860), (1001, 1004));
        let t = ConflictTable::build(&s, &[cover, other]);
        assert!(!polyhedron_witness_exists(&t));
    }

    #[test]
    fn corollary3_empty_set_is_uncovered() {
        let schema = schema2();
        let s = sub(&schema, (830, 870), (1003, 1006));
        let t = ConflictTable::build(&s, &[]);
        assert!(polyhedron_witness_exists(&t));
    }
}
