//! A-priori estimation of the point-witness probability `ρw` and the RSPC
//! iteration budget `d` (Algorithm 2 and Proposition 1 of the paper).

use crate::conflict::{ConflictTable, Side};
use psc_model::{LogVolume, Subscription};
use serde::{Deserialize, Serialize};

/// The witness-probability estimate for a subsumption instance.
///
/// Algorithm 2 of the paper approximates the size `I(sw)` of the *smallest*
/// polyhedron witness by taking, on each attribute, the minimum width of any
/// uncovered strip recorded in the conflict table (falling back to the full
/// width of `s` when no entry constrains the attribute), and multiplying the
/// minima. Then `ρw = I(sw) / I(s)` lower-bounds the chance that one uniform
/// sample of `s` hits a witness **assuming `s` is not covered**, and
/// Proposition 1 turns a target error probability `δ` into an iteration
/// budget: `d = ln δ / ln(1 − ρw)`.
///
/// Both `I(s)` and `d` routinely exceed any fixed-width integer (Figures 7
/// and 9 of the paper plot `log10(d)` up to 10^50), so everything is carried
/// in log-space.
///
/// # Example
/// ```
/// use psc_core::{ConflictTable, WitnessEstimate};
/// use psc_model::{Schema, Subscription};
///
/// let schema = Schema::builder()
///     .attribute("x1", 800, 900).attribute("x2", 1000, 1010).build();
/// let s = Subscription::builder(&schema)
///     .range("x1", 830, 870).range("x2", 1003, 1006).build()?;
/// let s1 = Subscription::builder(&schema)
///     .range("x1", 820, 850).range("x2", 1001, 1007).build()?;
/// let s2 = Subscription::builder(&schema)
///     .range("x1", 840, 880).range("x2", 1002, 1009).build()?;
/// let table = ConflictTable::build(&s, &[s1, s2]);
///
/// let est = WitnessEstimate::from_table(&s, &table);
/// // Minimal strips: x1 → min(20, 10) = 10 points; x2 → no entries → 4.
/// assert!((est.rho_w() - (10.0 * 4.0) / (41.0 * 4.0)).abs() < 1e-9);
/// let d = est.iterations_for(1e-10);
/// assert!(d > 0.0 && d.is_finite());
/// # Ok::<(), psc_model::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WitnessEstimate {
    /// `I(sw)` — estimated size of the smallest polyhedron witness.
    witness_size: LogVolume,
    /// `I(s)` — size of the tested subscription.
    subscription_size: LogVolume,
    /// `ρw = I(sw)/I(s)`, clamped to `[0, 1]`.
    rho_w: f64,
}

impl WitnessEstimate {
    /// Runs Algorithm 2 on a prebuilt conflict table.
    pub fn from_table(s: &Subscription, table: &ConflictTable) -> Self {
        let mut witness_size = LogVolume::ONE;
        for j in 0..s.arity() {
            let full = s.ranges()[j].count();
            let mut min_width = full;
            for row in table.rows() {
                for side in Side::BOTH {
                    if let Some(e) = row.cell(psc_model::AttrId(j), side) {
                        min_width = min_width.min(e.strip_count());
                    }
                }
            }
            witness_size += LogVolume::from_count(min_width);
        }
        let subscription_size = s.size();
        let rho_w = witness_size.ratio(&subscription_size);
        WitnessEstimate {
            witness_size,
            subscription_size,
            rho_w,
        }
    }

    /// Convenience: builds the conflict table and estimates in one step.
    pub fn compute(s: &Subscription, set: &[Subscription]) -> Self {
        let table = ConflictTable::build(s, set);
        Self::from_table(s, &table)
    }

    /// The estimated probability that a uniform point of `s` is a point
    /// witness, given that `s` is not covered.
    pub fn rho_w(&self) -> f64 {
        self.rho_w
    }

    /// `I(sw)` in log-space.
    pub fn witness_size(&self) -> LogVolume {
        self.witness_size
    }

    /// `I(s)` in log-space.
    pub fn subscription_size(&self) -> LogVolume {
        self.subscription_size
    }

    /// The iteration budget `d` for error probability `delta` (Equation 1
    /// solved for `d`): the smallest `d` with `(1 − ρw)^d ≤ δ`.
    ///
    /// Returned as `f64` because `d` can exceed `u64::MAX` by hundreds of
    /// orders of magnitude; combine with [`WitnessEstimate::log10_iterations`]
    /// for reporting and clamp with a cap before running RSPC.
    ///
    /// Returns `f64::INFINITY` when `ρw == 0` (no witness believed to exist —
    /// no finite number of samples reaches the target error) and `0` when
    /// `ρw == 1` (the first sample decides).
    ///
    /// # Panics
    /// Panics if `delta` is not within `(0, 1)`.
    pub fn iterations_for(&self, delta: f64) -> f64 {
        assert!(
            delta > 0.0 && delta < 1.0,
            "delta must be in (0, 1), got {delta}"
        );
        if self.rho_w <= 0.0 {
            return f64::INFINITY;
        }
        if self.rho_w >= 1.0 {
            return 0.0;
        }
        // d = ln δ / ln(1 − ρw); ln_1p keeps precision for tiny ρw.
        (delta.ln() / (-self.rho_w).ln_1p()).ceil()
    }

    /// `log10(d)` for the given error probability — the quantity plotted in
    /// Figures 7 and 9 of the paper. Computed without materializing `d`.
    pub fn log10_iterations(&self, delta: f64) -> f64 {
        assert!(
            delta > 0.0 && delta < 1.0,
            "delta must be in (0, 1), got {delta}"
        );
        if self.rho_w <= 0.0 {
            return f64::INFINITY;
        }
        if self.rho_w >= 1.0 {
            return 0.0;
        }
        // log10 d = log10(ln δ / ln(1−ρw)) = log10(-ln δ) − log10(−ln(1−ρw)).
        let num = (-delta.ln()).log10();
        let den = (-(-self.rho_w).ln_1p()).log10();
        num - den
    }

    /// The achieved error bound after `iterations` samples: `(1 − ρw)^d`.
    ///
    /// Used when a cap truncates the theoretical budget, to report the error
    /// probability actually guaranteed.
    pub fn error_after(&self, iterations: u64) -> f64 {
        if self.rho_w <= 0.0 {
            return 1.0;
        }
        if self.rho_w >= 1.0 {
            return 0.0;
        }
        // (1−ρw)^d = exp(d · ln(1−ρw)).
        (iterations as f64 * (-self.rho_w).ln_1p()).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psc_model::Schema;

    fn schema2() -> Schema {
        Schema::builder()
            .attribute("x1", 800, 900)
            .attribute("x2", 1000, 1010)
            .build()
    }

    fn sub(schema: &Schema, x1: (i64, i64), x2: (i64, i64)) -> Subscription {
        Subscription::builder(schema)
            .range("x1", x1.0, x1.1)
            .range("x2", x2.0, x2.1)
            .build()
            .unwrap()
    }

    fn table3_estimate() -> WitnessEstimate {
        let schema = schema2();
        let s = sub(&schema, (830, 870), (1003, 1006));
        let s1 = sub(&schema, (820, 850), (1001, 1007));
        let s2 = sub(&schema, (840, 880), (1002, 1009));
        WitnessEstimate::compute(&s, &[s1, s2])
    }

    #[test]
    fn algorithm2_on_table3() {
        let est = table3_estimate();
        // x1 strips: [851,870] → 20 points; [830,839] → 10 points; min 10.
        // x2: no defined entries → full width 4.
        // I(sw) = 40, I(s) = 164.
        assert!((est.witness_size().to_f64() - 40.0).abs() < 1e-6);
        assert!((est.subscription_size().to_f64() - 164.0).abs() < 1e-6);
        assert!((est.rho_w() - 40.0 / 164.0).abs() < 1e-12);
    }

    #[test]
    fn d_grows_as_delta_shrinks() {
        let est = table3_estimate();
        let d6 = est.iterations_for(1e-6);
        let d10 = est.iterations_for(1e-10);
        assert!(d10 > d6);
        // Sanity: d = ln δ / ln(1−ρw) with ρw ≈ 0.2439 → d6 ≈ 50.
        assert!((d6 - 50.0).abs() <= 1.0, "d6 = {d6}");
    }

    #[test]
    fn log10_matches_direct_computation_when_finite() {
        let est = table3_estimate();
        for delta in [1e-3, 1e-6, 1e-10] {
            let d = est.iterations_for(delta);
            let lg = est.log10_iterations(delta);
            // ceil() in iterations_for introduces sub-unit wiggle.
            assert!((d.log10() - lg).abs() < 0.05, "delta={delta} d={d} lg={lg}");
        }
    }

    #[test]
    fn log10_handles_astronomical_d() {
        // One attribute with a 1-point minimal strip in a domain of 10^15
        // points, times 4 more such attributes: ρw ≈ 10^-75.
        let schema = Schema::uniform(5, 0, 1_000_000_000_000_000);
        let s = Subscription::whole_space(&schema);
        let mut inner = s.clone();
        for j in 0..5 {
            let id = psc_model::AttrId(j);
            let r = psc_model::Range::new(1, 1_000_000_000_000_000).unwrap();
            inner = inner.with_range(id, r).unwrap();
        }
        let est = WitnessEstimate::compute(&s, &[inner]);
        let lg = est.log10_iterations(1e-10);
        assert!(lg > 70.0 && lg.is_finite(), "lg = {lg}");
        // d itself is representable here (1e75 < f64::MAX) but enormous.
        assert!(est.iterations_for(1e-10) > 1e70);
    }

    #[test]
    fn error_after_matches_budget() {
        let est = table3_estimate();
        let d = est.iterations_for(1e-6);
        let err = est.error_after(d as u64);
        assert!(err <= 1e-6);
        // One fewer iteration misses the target.
        let err_short = est.error_after(d as u64 - 1);
        assert!(err_short > 1e-6 * (1.0 - est.rho_w()));
    }

    #[test]
    fn rho_zero_cases() {
        // Set fully covering s on every attribute side: no defined entries at
        // all would mean pairwise cover; construct instead a covered s whose
        // table still has entries — ρw is positive but the answer is YES.
        // Here we test the degenerate empty-set case: every attribute keeps
        // full width, I(sw) = I(s), ρw = 1 → d = 0.
        let schema = schema2();
        let s = sub(&schema, (830, 870), (1003, 1006));
        let est = WitnessEstimate::compute(&s, &[]);
        assert_eq!(est.rho_w(), 1.0);
        assert_eq!(est.iterations_for(1e-10), 0.0);
        assert_eq!(est.error_after(5), 0.0);
    }

    #[test]
    #[should_panic(expected = "delta must be in (0, 1)")]
    fn invalid_delta_panics() {
        table3_estimate().iterations_for(0.0);
    }
}
