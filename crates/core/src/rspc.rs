//! RSPC — Random Simple Predicates Cover (Algorithm 1 of the paper).
//!
//! The Monte-Carlo core: guess up to `d` uniform points inside `s`; if any
//! guess is a point witness (inside `s`, outside every `si`), the answer is a
//! **definite NO**. If all `d` guesses fail, answer a **probabilistic YES**
//! whose error is bounded by `(1 − ρw)^d` (Proposition 1).

use crate::witness::PointWitness;
use psc_model::Subscription;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Outcome of one RSPC execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RspcOutcome {
    /// A point witness was found: `s` is definitely **not** covered.
    NotCovered {
        /// The witness point that proves non-coverage.
        witness: PointWitness,
        /// Number of guesses performed, including the successful one.
        iterations: u64,
    },
    /// No witness found within the budget: `s` is covered with probability
    /// at least `1 − error_bound`.
    ProbablyCovered {
        /// Number of guesses performed (the full budget).
        iterations: u64,
    },
}

impl RspcOutcome {
    /// Number of guesses performed.
    pub fn iterations(&self) -> u64 {
        match self {
            RspcOutcome::NotCovered { iterations, .. }
            | RspcOutcome::ProbablyCovered { iterations } => *iterations,
        }
    }

    /// Whether the outcome asserts coverage.
    pub fn is_covered(&self) -> bool {
        matches!(self, RspcOutcome::ProbablyCovered { .. })
    }
}

/// The RSPC sampler.
///
/// Stateless apart from configuration; pass any [`Rng`] to
/// [`Rspc::run`]. Determinism in experiments comes from seeding the RNG.
///
/// # Example
/// ```
/// use psc_core::Rspc;
/// use psc_model::{Schema, Subscription};
/// use rand::SeedableRng;
///
/// let schema = Schema::uniform(1, 0, 99);
/// let s = Subscription::whole_space(&schema);
/// let half = Subscription::builder(&schema).range("x0", 0, 49).build()?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// // Half the space is uncovered: a witness is found almost immediately.
/// let out = Rspc::new(1_000).run(&s, &[half], &mut rng);
/// assert!(!out.is_covered());
/// # Ok::<(), psc_model::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rspc {
    /// Maximum number of guesses (`d`).
    budget: u64,
}

impl Rspc {
    /// Creates a sampler with the given guess budget `d`.
    pub fn new(budget: u64) -> Self {
        Rspc { budget }
    }

    /// The configured guess budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Runs Algorithm 1: decide whether `s` is covered by the union of `set`.
    ///
    /// Complexity `O(d · m · k)` worst case; every iteration exits early on
    /// the first member of `set` containing the sampled point, and the whole
    /// run exits on the first witness.
    pub fn run<R: Rng + ?Sized>(
        &self,
        s: &Subscription,
        set: &[Subscription],
        rng: &mut R,
    ) -> RspcOutcome {
        let mut point = vec![0i64; s.arity()];
        for i in 0..self.budget {
            sample_point(s, rng, &mut point);
            if !set.iter().any(|si| si.contains_point(&point)) {
                let witness = PointWitness::verify(point.clone(), s, set)
                    .expect("sampled point inside s and outside set is a witness");
                return RspcOutcome::NotCovered {
                    witness,
                    iterations: i + 1,
                };
            }
        }
        RspcOutcome::ProbablyCovered {
            iterations: self.budget,
        }
    }
}

/// Samples a uniform integer point inside `s` into `out`.
///
/// Exposed for reuse by the exact checker's randomized smoke tests and by
/// benchmarks measuring sampling cost in isolation.
pub fn sample_point<R: Rng + ?Sized>(s: &Subscription, rng: &mut R, out: &mut Vec<i64>) {
    out.clear();
    out.extend(s.ranges().iter().map(|r| rng.gen_range(r.lo()..=r.hi())));
}

#[cfg(test)]
mod tests {
    use super::*;
    use psc_model::Schema;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schema2() -> Schema {
        Schema::builder()
            .attribute("x1", 800, 900)
            .attribute("x2", 1000, 1010)
            .build()
    }

    fn sub(schema: &Schema, x1: (i64, i64), x2: (i64, i64)) -> Subscription {
        Subscription::builder(schema)
            .range("x1", x1.0, x1.1)
            .range("x2", x2.0, x2.1)
            .build()
            .unwrap()
    }

    #[test]
    fn covered_case_exhausts_budget() {
        // Table 3: s ⊑ s1 ∨ s2. RSPC can never find a witness.
        let schema = schema2();
        let s = sub(&schema, (830, 870), (1003, 1006));
        let s1 = sub(&schema, (820, 850), (1001, 1007));
        let s2 = sub(&schema, (840, 880), (1002, 1009));
        let mut rng = StdRng::seed_from_u64(42);
        let out = Rspc::new(500).run(&s, &[s1, s2], &mut rng);
        assert_eq!(out, RspcOutcome::ProbablyCovered { iterations: 500 });
        assert!(out.is_covered());
    }

    #[test]
    fn non_covered_case_finds_witness() {
        // Figure 3: the strip x1 ∈ [871, 890] is uncovered (1/3 of s).
        let schema = schema2();
        let s = sub(&schema, (830, 890), (1003, 1006));
        let s1 = sub(&schema, (820, 850), (1002, 1009));
        let s2 = sub(&schema, (840, 870), (1001, 1007));
        let mut rng = StdRng::seed_from_u64(42);
        let set = [s1, s2];
        let out = Rspc::new(10_000).run(&s, &set, &mut rng);
        match out {
            RspcOutcome::NotCovered {
                witness,
                iterations,
            } => {
                assert!(witness.holds_against(&s, &set));
                assert!(witness.point()[0] > 870);
                // With ρw ≈ 1/3 the witness arrives within a few guesses.
                assert!(iterations < 100, "took {iterations} iterations");
            }
            other => panic!("expected NotCovered, got {other:?}"),
        }
    }

    #[test]
    fn zero_budget_answers_covered_vacuously() {
        let schema = schema2();
        let s = sub(&schema, (830, 890), (1003, 1006));
        let mut rng = StdRng::seed_from_u64(1);
        let out = Rspc::new(0).run(&s, &[], &mut rng);
        assert_eq!(out, RspcOutcome::ProbablyCovered { iterations: 0 });
    }

    #[test]
    fn empty_set_single_guess_refutes() {
        let schema = schema2();
        let s = sub(&schema, (830, 890), (1003, 1006));
        let mut rng = StdRng::seed_from_u64(1);
        let out = Rspc::new(10).run(&s, &[], &mut rng);
        assert_eq!(out.iterations(), 1);
        assert!(!out.is_covered());
    }

    #[test]
    fn sample_point_stays_inside() {
        let schema = schema2();
        let s = sub(&schema, (830, 870), (1003, 1006));
        let mut rng = StdRng::seed_from_u64(7);
        let mut p = Vec::new();
        for _ in 0..1_000 {
            sample_point(&s, &mut rng, &mut p);
            assert!(s.contains_point(&p));
        }
    }

    #[test]
    fn sampling_covers_extremes() {
        // Uniform sampling should reach both endpoints of a tiny range.
        let schema = Schema::uniform(1, 0, 1);
        let s = Subscription::whole_space(&schema);
        let mut rng = StdRng::seed_from_u64(3);
        let mut p = Vec::new();
        let mut seen = [false; 2];
        for _ in 0..100 {
            sample_point(&s, &mut rng, &mut p);
            seen[p[0] as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let schema = schema2();
        let s = sub(&schema, (830, 890), (1003, 1006));
        let s1 = sub(&schema, (820, 850), (1002, 1009));
        let out1 = Rspc::new(100).run(&s, std::slice::from_ref(&s1), &mut StdRng::seed_from_u64(9));
        let out2 = Rspc::new(100).run(&s, &[s1], &mut StdRng::seed_from_u64(9));
        assert_eq!(out1, out2);
    }
}
