//! Witnesses to non-coverage (Definitions 3 and 4 of the paper).

use psc_model::Subscription;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A **point witness** to non-cover: a point satisfying `s` but no member of
/// `S` (Definition 4). Producing one proves `s ⋢ S` deterministically — this
/// is the one-sided certainty the Monte-Carlo RSPC test exploits.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PointWitness {
    point: Vec<i64>,
}

impl PointWitness {
    /// Wraps a candidate point **after verifying** it truly witnesses
    /// non-coverage: inside `s` and outside every element of `set`.
    ///
    /// Returns `None` when the point is not a witness.
    pub fn verify(point: Vec<i64>, s: &Subscription, set: &[Subscription]) -> Option<Self> {
        if !s.contains_point(&point) {
            return None;
        }
        if set.iter().any(|si| si.contains_point(&point)) {
            return None;
        }
        Some(PointWitness { point })
    }

    /// The witness coordinates in schema order.
    pub fn point(&self) -> &[i64] {
        &self.point
    }

    /// Re-checks the witness against a (possibly different) set.
    pub fn holds_against(&self, s: &Subscription, set: &[Subscription]) -> bool {
        s.contains_point(&self.point) && !set.iter().any(|si| si.contains_point(&self.point))
    }
}

impl fmt::Display for PointWitness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "witness(")?;
        for (i, v) in self.point.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psc_model::Schema;

    fn setup() -> (Subscription, Vec<Subscription>) {
        // Figure 3 of the paper: s1, s2 do not cover s; the polyhedron witness
        // is the strip x1 ∈ [871, 890] of s (above s2's high bound).
        let schema = Schema::builder()
            .attribute("x1", 800, 900)
            .attribute("x2", 1000, 1010)
            .build();
        let s = Subscription::builder(&schema)
            .range("x1", 830, 890)
            .range("x2", 1003, 1006)
            .build()
            .unwrap();
        let s1 = Subscription::builder(&schema)
            .range("x1", 820, 850)
            .range("x2", 1002, 1009)
            .build()
            .unwrap();
        let s2 = Subscription::builder(&schema)
            .range("x1", 840, 870)
            .range("x2", 1001, 1007)
            .build()
            .unwrap();
        (s, vec![s1, s2])
    }

    #[test]
    fn verify_accepts_true_witness() {
        let (s, set) = setup();
        // Any point with x1 > 870 inside s is a witness (Figure 3's rectangle P).
        let w = PointWitness::verify(vec![880, 1004], &s, &set).unwrap();
        assert_eq!(w.point(), &[880, 1004]);
        assert!(w.holds_against(&s, &set));
    }

    #[test]
    fn verify_rejects_point_outside_s() {
        let (s, set) = setup();
        assert!(PointWitness::verify(vec![895, 1004], &s, &set).is_none());
    }

    #[test]
    fn verify_rejects_covered_point() {
        let (s, set) = setup();
        // x1 = 845 is inside both s1 and s2.
        assert!(PointWitness::verify(vec![845, 1004], &s, &set).is_none());
    }

    #[test]
    fn witness_stops_holding_when_set_grows() {
        let (s, set) = setup();
        let w = PointWitness::verify(vec![880, 1004], &s, &set).unwrap();
        let schema = s.schema().clone();
        let plug = Subscription::builder(&schema)
            .range("x1", 871, 890)
            .range("x2", 1003, 1006)
            .build()
            .unwrap();
        let mut bigger = set.clone();
        bigger.push(plug);
        assert!(!w.holds_against(&s, &bigger));
    }

    #[test]
    fn display_shows_coordinates() {
        let (s, set) = setup();
        let w = PointWitness::verify(vec![880, 1004], &s, &set).unwrap();
        assert_eq!(w.to_string(), "witness(880, 1004)");
    }
}
