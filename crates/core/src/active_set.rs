//! Maintaining an active (uncovered) subscription set over a stream.
//!
//! The usage pattern behind the paper's Figures 13–14 and behind every
//! broker link: subscriptions arrive one at a time; each is admitted only if
//! the configured coverage policy fails to prove it redundant against the
//! current active set. This type packages that loop with bookkeeping
//! (admission counts, per-stage statistics, probabilistic-drop accounting)
//! so experiments, brokers and applications share one audited
//! implementation.

use crate::engine::{CoverDecision, DecisionStage, SubsumptionChecker};
use crate::pairwise::PairwiseChecker;
use psc_model::Subscription;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which coverage notion admits subscriptions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionPolicy {
    /// Admit everything (no reduction — the flooding baseline).
    All,
    /// Drop only pairwise-covered subscriptions (classical).
    Pairwise,
    /// Drop union-covered subscriptions via the probabilistic checker.
    Group,
}

/// Aggregate statistics for one stream.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AdmissionStats {
    /// Subscriptions offered.
    pub offered: u64,
    /// Subscriptions admitted into the active set.
    pub admitted: u64,
    /// Drops with a deterministic cover proof.
    pub dropped_deterministic: u64,
    /// Drops backed only by a probabilistic YES.
    pub dropped_probabilistic: u64,
    /// Total RSPC iterations spent across all decisions.
    pub rspc_iterations: u64,
    /// The loosest (largest) error bound among probabilistic drops.
    pub worst_error_bound: f64,
}

/// An active-set maintainer over a subscription stream.
///
/// # Example
/// ```
/// use psc_core::active_set::{ActiveSet, AdmissionPolicy};
/// use psc_core::SubsumptionChecker;
/// use psc_model::{Schema, Subscription};
/// use rand::SeedableRng;
///
/// let schema = Schema::uniform(1, 0, 99);
/// let sub = |lo, hi| Subscription::builder(&schema).range("x0", lo, hi).build().unwrap();
/// let checker = SubsumptionChecker::builder().error_probability(1e-9).build();
/// let mut set = ActiveSet::new(AdmissionPolicy::Group, checker);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
///
/// assert!(set.offer(sub(0, 60), &mut rng));   // admitted
/// assert!(set.offer(sub(50, 99), &mut rng));  // admitted
/// assert!(!set.offer(sub(30, 80), &mut rng)); // union-covered: dropped
/// assert_eq!(set.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct ActiveSet {
    policy: AdmissionPolicy,
    checker: SubsumptionChecker,
    active: Vec<Subscription>,
    stats: AdmissionStats,
}

impl ActiveSet {
    /// Creates an empty set with the given policy; `checker` is used only by
    /// [`AdmissionPolicy::Group`].
    pub fn new(policy: AdmissionPolicy, checker: SubsumptionChecker) -> Self {
        ActiveSet {
            policy,
            checker,
            active: Vec::new(),
            stats: AdmissionStats::default(),
        }
    }

    /// Offers a subscription; returns whether it was admitted.
    pub fn offer<R: Rng + ?Sized>(&mut self, sub: Subscription, rng: &mut R) -> bool {
        self.stats.offered += 1;
        let admitted = match self.policy {
            AdmissionPolicy::All => true,
            AdmissionPolicy::Pairwise => {
                if PairwiseChecker.is_covered(&sub, &self.active) {
                    self.stats.dropped_deterministic += 1;
                    false
                } else {
                    true
                }
            }
            AdmissionPolicy::Group => {
                let decision = self.checker.check(&sub, &self.active, rng);
                self.record_group(&decision);
                !decision.is_covered()
            }
        };
        if admitted {
            self.stats.admitted += 1;
            self.active.push(sub);
        }
        admitted
    }

    fn record_group(&mut self, decision: &CoverDecision) {
        self.stats.rspc_iterations += decision.stats.rspc_iterations;
        if decision.is_covered() {
            if decision.stage == DecisionStage::PairwiseCover {
                self.stats.dropped_deterministic += 1;
            } else {
                self.stats.dropped_probabilistic += 1;
                if let crate::engine::CoverAnswer::Covered { error_bound } = decision.answer {
                    self.stats.worst_error_bound = self.stats.worst_error_bound.max(error_bound);
                }
            }
        }
    }

    /// The current active subscriptions.
    pub fn subscriptions(&self) -> &[Subscription] {
        &self.active
    }

    /// Number of active subscriptions.
    pub fn len(&self) -> usize {
        self.active.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.active.is_empty()
    }

    /// Stream statistics so far.
    pub fn stats(&self) -> AdmissionStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psc_model::Schema;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schema() -> Schema {
        Schema::uniform(1, 0, 99)
    }

    fn sub(schema: &Schema, lo: i64, hi: i64) -> Subscription {
        Subscription::builder(schema)
            .range("x0", lo, hi)
            .build()
            .unwrap()
    }

    fn checker() -> SubsumptionChecker {
        SubsumptionChecker::builder()
            .error_probability(1e-9)
            .build()
    }

    #[test]
    fn all_policy_admits_everything() {
        let schema = schema();
        let mut set = ActiveSet::new(AdmissionPolicy::All, checker());
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..5 {
            assert!(set.offer(sub(&schema, i, i + 10), &mut rng));
        }
        assert_eq!(set.len(), 5);
        assert_eq!(set.stats().offered, 5);
        assert_eq!(set.stats().admitted, 5);
    }

    #[test]
    fn pairwise_policy_drops_single_covers_only() {
        let schema = schema();
        let mut set = ActiveSet::new(AdmissionPolicy::Pairwise, checker());
        let mut rng = StdRng::seed_from_u64(1);
        assert!(set.offer(sub(&schema, 0, 60), &mut rng));
        assert!(set.offer(sub(&schema, 50, 99), &mut rng));
        assert!(!set.offer(sub(&schema, 10, 20), &mut rng)); // inside first
        assert!(set.offer(sub(&schema, 30, 80), &mut rng)); // union-covered but admitted
        assert_eq!(set.len(), 3);
        assert_eq!(set.stats().dropped_deterministic, 1);
        assert_eq!(set.stats().dropped_probabilistic, 0);
    }

    #[test]
    fn group_policy_drops_union_covers_and_accounts() {
        let schema = schema();
        let mut set = ActiveSet::new(AdmissionPolicy::Group, checker());
        let mut rng = StdRng::seed_from_u64(1);
        assert!(set.offer(sub(&schema, 0, 60), &mut rng));
        assert!(set.offer(sub(&schema, 50, 99), &mut rng));
        assert!(!set.offer(sub(&schema, 10, 20), &mut rng)); // pairwise-covered
        assert!(!set.offer(sub(&schema, 30, 80), &mut rng)); // union-covered
        assert_eq!(set.len(), 2);
        let stats = set.stats();
        assert_eq!(stats.dropped_deterministic, 1);
        assert_eq!(stats.dropped_probabilistic, 1);
        assert!(stats.worst_error_bound > 0.0 && stats.worst_error_bound <= 1e-8);
        assert!(stats.rspc_iterations > 0);
    }

    #[test]
    fn group_never_larger_than_pairwise_on_identical_streams() {
        let schema = Schema::uniform(2, 0, 999);
        let mk = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            use rand::Rng;
            let lo0 = rng.gen_range(0..800);
            let lo1 = rng.gen_range(0..800);
            Subscription::builder(&schema)
                .range("x0", lo0, lo0 + rng.gen_range(50..200))
                .range("x1", lo1, lo1 + rng.gen_range(50..200))
                .build()
                .unwrap()
        };
        let mut pairwise = ActiveSet::new(AdmissionPolicy::Pairwise, checker());
        let mut group = ActiveSet::new(AdmissionPolicy::Group, checker());
        let mut rng = StdRng::seed_from_u64(7);
        for seed in 0..200 {
            let s = mk(seed);
            pairwise.offer(s.clone(), &mut rng);
            group.offer(s, &mut rng);
        }
        assert!(group.len() <= pairwise.len());
    }
}
