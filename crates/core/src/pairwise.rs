//! The classical pairwise covering baseline.
//!
//! Deterministic covering as used by Siena-style routers (the paper's
//! Section 7 related work, e.g. [10, 11, 8]): a new subscription is dropped
//! only when a **single** existing subscription covers it. This is the
//! comparison baseline for Figures 13 and 14.

use psc_model::Subscription;

/// Pairwise coverage checker (`∃ i: s ⊑ si`).
///
/// # Example
/// ```
/// use psc_core::PairwiseChecker;
/// use psc_model::{Schema, Subscription};
///
/// let schema = Schema::uniform(1, 0, 99);
/// let s = Subscription::builder(&schema).range("x0", 10, 20).build()?;
/// let wide = Subscription::builder(&schema).range("x0", 0, 50).build()?;
/// assert_eq!(PairwiseChecker.find_cover(&s, &[wide]), Some(0));
/// # Ok::<(), psc_model::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PairwiseChecker;

impl PairwiseChecker {
    /// Returns the index of the first subscription covering `s`, if any.
    /// Cost `O(m·k)`.
    pub fn find_cover(&self, s: &Subscription, set: &[Subscription]) -> Option<usize> {
        set.iter().position(|si| si.covers(s))
    }

    /// Whether any single subscription covers `s`.
    pub fn is_covered(&self, s: &Subscription, set: &[Subscription]) -> bool {
        self.find_cover(s, set).is_some()
    }

    /// Indices of existing subscriptions that the *new* subscription covers —
    /// the reverse relation, used when promoting/demoting subscriptions in a
    /// covering store.
    pub fn covered_by_new(&self, s: &Subscription, set: &[Subscription]) -> Vec<usize> {
        set.iter()
            .enumerate()
            .filter_map(|(i, si)| s.covers(si).then_some(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psc_model::Schema;

    fn schema2() -> Schema {
        Schema::builder()
            .attribute("x1", 800, 900)
            .attribute("x2", 1000, 1010)
            .build()
    }

    fn sub(schema: &Schema, x1: (i64, i64), x2: (i64, i64)) -> Subscription {
        Subscription::builder(schema)
            .range("x1", x1.0, x1.1)
            .range("x2", x2.0, x2.1)
            .build()
            .unwrap()
    }

    #[test]
    fn detects_single_cover() {
        let schema = schema2();
        let s = sub(&schema, (830, 870), (1003, 1006));
        let narrow = sub(&schema, (840, 860), (1004, 1005));
        let wide = sub(&schema, (820, 880), (1001, 1008));
        let set = [narrow, wide];
        assert_eq!(PairwiseChecker.find_cover(&s, &set), Some(1));
        assert!(PairwiseChecker.is_covered(&s, &set));
    }

    #[test]
    fn misses_group_cover_by_design() {
        // Table 3: covered by the union, but pairwise finds nothing — the
        // exact gap the paper's probabilistic algorithm closes.
        let schema = schema2();
        let s = sub(&schema, (830, 870), (1003, 1006));
        let s1 = sub(&schema, (820, 850), (1001, 1007));
        let s2 = sub(&schema, (840, 880), (1002, 1009));
        assert_eq!(PairwiseChecker.find_cover(&s, &[s1, s2]), None);
    }

    #[test]
    fn reverse_relation_lists_all_covered() {
        let schema = schema2();
        let s = sub(&schema, (800, 900), (1000, 1010));
        let a = sub(&schema, (830, 870), (1003, 1006));
        let b = sub(&schema, (800, 900), (1000, 1010));
        let c = sub(&schema, (805, 810), (1001, 1002));
        assert_eq!(
            PairwiseChecker.covered_by_new(&s, &[a, b, c]),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn empty_set_is_never_covering() {
        let schema = schema2();
        let s = sub(&schema, (830, 870), (1003, 1006));
        assert_eq!(PairwiseChecker.find_cover(&s, &[]), None);
    }

    #[test]
    fn identical_subscription_covers() {
        let schema = schema2();
        let s = sub(&schema, (830, 870), (1003, 1006));
        assert!(PairwiseChecker.is_covered(&s, std::slice::from_ref(&s)));
    }
}
