//! Exact (exponential-time) cover decision, used as ground truth.
//!
//! The general subsumption problem is co-NP complete, but small instances can
//! be decided exactly by **coordinate compression**: on each attribute,
//! subscription bounds cut `s`'s range into at most `2k + 1` elementary
//! intervals; within the grid of elementary cells every `si` either fully
//! contains or fully misses a cell, so testing one representative corner per
//! cell decides coverage exactly. Worst case `O((2k+1)^m · k)` — exponential
//! in `m`, which is fine for the test-oracle role (`m ≤ 6` in our property
//! tests) and for experiments that count RSPC false decisions against ground
//! truth.
//!
//! The recursion prunes two ways: a branch whose *alive set* (subscriptions
//! still able to contain the current partial cell) becomes empty yields an
//! immediate witness, and a branch where one alive subscription already
//! covers `s` on all remaining attributes is fully covered and skipped.

use crate::witness::PointWitness;
use psc_model::Subscription;
use std::fmt;

/// Outcome of an exact check.
#[derive(Debug, Clone, PartialEq)]
pub enum ExactOutcome {
    /// `s ⊑ S`, with certainty.
    Covered,
    /// `s ⋢ S`; the witness is the smallest-coordinate corner of some
    /// uncovered elementary cell.
    NotCovered(PointWitness),
}

impl ExactOutcome {
    /// Whether the outcome asserts coverage.
    pub fn is_covered(&self) -> bool {
        matches!(self, ExactOutcome::Covered)
    }
}

/// Error raised when an instance exceeds the configured node budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// The configured maximum number of visited cells.
    pub budget: u64,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "exact cover check exceeded budget of {} cells",
            self.budget
        )
    }
}

impl std::error::Error for BudgetExceeded {}

/// The exact checker.
///
/// # Example
/// ```
/// use psc_core::exact::ExactChecker;
/// use psc_model::{Schema, Subscription};
///
/// let schema = Schema::builder()
///     .attribute("x1", 800, 900).attribute("x2", 1000, 1010).build();
/// let s = Subscription::builder(&schema)
///     .range("x1", 830, 870).range("x2", 1003, 1006).build()?;
/// let s1 = Subscription::builder(&schema)
///     .range("x1", 820, 850).range("x2", 1001, 1007).build()?;
/// let s2 = Subscription::builder(&schema)
///     .range("x1", 840, 880).range("x2", 1002, 1009).build()?;
/// let out = ExactChecker::default().check(&s, &[s1, s2]).unwrap();
/// assert!(out.is_covered());
/// # Ok::<(), psc_model::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ExactChecker {
    /// Maximum number of recursion nodes before giving up.
    budget: u64,
}

impl Default for ExactChecker {
    fn default() -> Self {
        ExactChecker { budget: 50_000_000 }
    }
}

impl ExactChecker {
    /// Creates a checker with an explicit node budget.
    pub fn with_budget(budget: u64) -> Self {
        ExactChecker { budget }
    }

    /// Decides exactly whether `s` is covered by the union of `set`.
    ///
    /// # Errors
    /// Returns [`BudgetExceeded`] when the instance needs more recursion
    /// nodes than the budget allows.
    pub fn check(
        &self,
        s: &Subscription,
        set: &[Subscription],
    ) -> Result<ExactOutcome, BudgetExceeded> {
        let m = s.arity();
        // Elementary interval start points per attribute.
        let mut cuts: Vec<Vec<i64>> = Vec::with_capacity(m);
        for j in 0..m {
            let attr = psc_model::AttrId(j);
            let sr = s.range(attr);
            let mut c = vec![sr.lo()];
            for si in set {
                let r = si.range(attr);
                if r.lo() > sr.lo() && r.lo() <= sr.hi() {
                    c.push(r.lo());
                }
                if r.hi() >= sr.lo() && r.hi() < sr.hi() {
                    c.push(r.hi() + 1);
                }
            }
            c.sort_unstable();
            c.dedup();
            cuts.push(c);
        }

        let alive: Vec<usize> = (0..set.len()).collect();
        let mut point = vec![0i64; m];
        let mut nodes: u64 = 0;
        match self.recurse(s, set, &cuts, 0, &alive, &mut point, &mut nodes)? {
            Some(p) => {
                let witness = PointWitness::verify(p, s, set)
                    .expect("uncovered cell corner must be a valid witness");
                Ok(ExactOutcome::NotCovered(witness))
            }
            None => Ok(ExactOutcome::Covered),
        }
    }

    /// Convenience wrapper returning a plain bool.
    ///
    /// # Errors
    /// Same as [`ExactChecker::check`].
    pub fn is_covered(
        &self,
        s: &Subscription,
        set: &[Subscription],
    ) -> Result<bool, BudgetExceeded> {
        Ok(self.check(s, set)?.is_covered())
    }

    #[allow(clippy::too_many_arguments)]
    fn recurse(
        &self,
        s: &Subscription,
        set: &[Subscription],
        cuts: &[Vec<i64>],
        j: usize,
        alive: &[usize],
        point: &mut Vec<i64>,
        nodes: &mut u64,
    ) -> Result<Option<Vec<i64>>, BudgetExceeded> {
        *nodes += 1;
        if *nodes > self.budget {
            return Err(BudgetExceeded {
                budget: self.budget,
            });
        }

        if alive.is_empty() {
            // Nothing can cover this partial cell: extend with s's minima.
            let mut w = point[..j].to_vec();
            w.extend(s.ranges()[j..].iter().map(|r| r.lo()));
            return Ok(Some(w));
        }
        if j == s.arity() {
            return Ok(None); // fully specified cell, alive non-empty ⇒ covered
        }
        // Prune: an alive subscription covering s on all remaining attributes
        // covers the entire remaining subtree.
        if alive
            .iter()
            .any(|&i| (j..s.arity()).all(|jj| set[i].ranges()[jj].contains_range(&s.ranges()[jj])))
        {
            return Ok(None);
        }

        let attr = psc_model::AttrId(j);
        for &start in &cuts[j] {
            point[j] = start;
            let next_alive: Vec<usize> = alive
                .iter()
                .copied()
                .filter(|&i| set[i].range(attr).contains(start))
                .collect();
            if let Some(w) = self.recurse(s, set, cuts, j + 1, &next_alive, point, nodes)? {
                return Ok(Some(w));
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use psc_model::{Range, Schema};

    fn schema2() -> Schema {
        Schema::builder()
            .attribute("x1", 800, 900)
            .attribute("x2", 1000, 1010)
            .build()
    }

    fn sub(schema: &Schema, x1: (i64, i64), x2: (i64, i64)) -> Subscription {
        Subscription::builder(schema)
            .range("x1", x1.0, x1.1)
            .range("x2", x2.0, x2.1)
            .build()
            .unwrap()
    }

    #[test]
    fn table3_is_covered() {
        let schema = schema2();
        let s = sub(&schema, (830, 870), (1003, 1006));
        let s1 = sub(&schema, (820, 850), (1001, 1007));
        let s2 = sub(&schema, (840, 880), (1002, 1009));
        assert!(ExactChecker::default().is_covered(&s, &[s1, s2]).unwrap());
    }

    #[test]
    fn figure3_is_not_covered_with_witness_above_870() {
        let schema = schema2();
        let s = sub(&schema, (830, 890), (1003, 1006));
        let s1 = sub(&schema, (820, 850), (1002, 1009));
        let s2 = sub(&schema, (840, 870), (1001, 1007));
        let set = [s1, s2];
        match ExactChecker::default().check(&s, &set).unwrap() {
            ExactOutcome::NotCovered(w) => {
                assert!(w.holds_against(&s, &set));
                assert!(w.point()[0] > 870);
            }
            ExactOutcome::Covered => panic!("expected non-cover"),
        }
    }

    #[test]
    fn single_point_gap_is_detected() {
        // Cover all of [0, 99] except exactly the point 57.
        let schema = Schema::uniform(1, 0, 99);
        let s = Subscription::whole_space(&schema);
        let left = Subscription::builder(&schema)
            .range("x0", 0, 56)
            .build()
            .unwrap();
        let right = Subscription::builder(&schema)
            .range("x0", 58, 99)
            .build()
            .unwrap();
        let set = [left, right];
        match ExactChecker::default().check(&s, &set).unwrap() {
            ExactOutcome::NotCovered(w) => assert_eq!(w.point(), &[57]),
            ExactOutcome::Covered => panic!("gap at 57 missed"),
        }
    }

    #[test]
    fn exact_cover_with_touching_pieces() {
        let schema = Schema::uniform(1, 0, 99);
        let s = Subscription::whole_space(&schema);
        let left = Subscription::builder(&schema)
            .range("x0", 0, 57)
            .build()
            .unwrap();
        let right = Subscription::builder(&schema)
            .range("x0", 58, 99)
            .build()
            .unwrap();
        assert!(ExactChecker::default()
            .is_covered(&s, &[left, right])
            .unwrap());
    }

    #[test]
    fn empty_set_not_covered() {
        let schema = schema2();
        let s = sub(&schema, (830, 870), (1003, 1006));
        match ExactChecker::default().check(&s, &[]).unwrap() {
            ExactOutcome::NotCovered(w) => assert_eq!(w.point(), &[830, 1003]),
            ExactOutcome::Covered => panic!("empty set cannot cover"),
        }
    }

    #[test]
    fn budget_exceeded_reports_error() {
        // A covered instance with 100 slabs forces ~100 recursion nodes;
        // give it only 10. (Uncovered instances can exit early, so a covered
        // one is needed to exercise the budget.)
        let schema = Schema::uniform(1, 0, 999);
        let s = Subscription::whole_space(&schema);
        let set: Vec<Subscription> = (0..100)
            .map(|i| {
                Subscription::builder(&schema)
                    .range("x0", i * 10, i * 10 + 9)
                    .build()
                    .unwrap()
            })
            .collect();
        let tiny = ExactChecker::with_budget(10);
        assert_eq!(tiny.check(&s, &set), Err(BudgetExceeded { budget: 10 }));
        // A generous budget decides the same instance.
        assert!(ExactChecker::default().is_covered(&s, &set).unwrap());
    }

    #[test]
    fn three_dimensional_cover() {
        // Split a cube into 8 octants: covered. Remove one: not covered.
        let schema = Schema::uniform(3, 0, 9);
        let s = Subscription::whole_space(&schema);
        let mut octants = Vec::new();
        for x in 0..2i64 {
            for y in 0..2i64 {
                for z in 0..2i64 {
                    octants.push(
                        Subscription::builder(&schema)
                            .range("x0", x * 5, x * 5 + 4)
                            .range("x1", y * 5, y * 5 + 4)
                            .range("x2", z * 5, z * 5 + 4)
                            .build()
                            .unwrap(),
                    );
                }
            }
        }
        let checker = ExactChecker::default();
        assert!(checker.is_covered(&s, &octants).unwrap());
        let missing = octants.split_off(1);
        assert!(!checker.is_covered(&s, &missing).unwrap());
    }

    // The exact checker agrees with brute-force point enumeration.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_matches_brute_force(
            subs in proptest::collection::vec(small_sub_strategy(), 0..6),
            s in small_sub_strategy(),
        ) {
            let brute = {
                let mut covered = true;
                'outer: for x in s.range(psc_model::AttrId(0)).lo()..=s.range(psc_model::AttrId(0)).hi() {
                    for y in s.range(psc_model::AttrId(1)).lo()..=s.range(psc_model::AttrId(1)).hi() {
                        if !subs.iter().any(|si| si.contains_point(&[x, y])) {
                            covered = false;
                            break 'outer;
                        }
                    }
                }
                covered
            };
            let exact = ExactChecker::default().is_covered(&s, &subs).unwrap();
            prop_assert_eq!(exact, brute);
        }
    }

    fn small_sub_strategy() -> impl Strategy<Value = Subscription> {
        (0i64..12, 0i64..6, 0i64..12, 0i64..6).prop_map(|(x, xw, y, yw)| {
            let schema = Schema::uniform(2, 0, 15);
            Subscription::from_ranges(
                &schema,
                vec![
                    Range::new(x.min(15), (x + xw).min(15)).unwrap(),
                    Range::new(y.min(15), (y + yw).min(15)).unwrap(),
                ],
            )
            .unwrap()
        })
    }
}
