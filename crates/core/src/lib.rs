//! # psc-core
//!
//! The algorithmic heart of the reproduction of *"Efficient Probabilistic
//! Subsumption Checking for Content-based Publish/Subscribe Systems"*
//! (Ouksel, Jurca, Podnar, Aberer — Middleware 2006).
//!
//! Given a new subscription `s` and a set `S = {s1, …, sk}` of existing
//! subscriptions, the **general subsumption problem** asks whether
//! `s ⊑ s1 ∨ … ∨ sk` — whether the rectangle `s` is contained in the union of
//! the rectangles of `S`. The problem is co-NP complete; this crate implements
//! the paper's probabilistic attack:
//!
//! 1. [`ConflictTable`] (Definition 2) — relates `s` to every simple predicate
//!    of every `si`; built in `O(m·k)`.
//! 2. Deterministic corollaries ([`corollaries`]) — pairwise cover, reverse
//!    cover, and polyhedron-witness existence, all read directly off the table.
//! 3. [`MinimizedCoverSet`] (Algorithm 3) — removes
//!    subscriptions irrelevant to the cover question in `O(m²k³)` worst case.
//! 4. [`WitnessEstimate`] (Algorithm 2) — a-priori
//!    estimate of the point-witness probability `ρw` and the iteration budget
//!    `d` for a target error probability `δ`.
//! 5. [`rspc`] (Algorithm 1) — the Monte-Carlo Random-Simple-Predicates-Cover
//!    test: definite NO (with a point witness) or probabilistic YES.
//! 6. [`SubsumptionChecker`] (Algorithm 4) — the
//!    full fast-decision pipeline combining all of the above.
//! 7. [`PairwiseChecker`] — the classical baseline
//!    that only detects single-subscription coverage.
//! 8. [`exact`] — an exponential-time exact decision procedure (coordinate
//!    compression + cell enumeration) used as ground truth in tests and for
//!    false-decision accounting in experiments.
//!
//! ## Example
//!
//! ```
//! use psc_core::{SubsumptionChecker, CoverAnswer};
//! use psc_model::{Schema, Subscription};
//! use rand::SeedableRng;
//!
//! let schema = Schema::builder()
//!     .attribute("x1", 800, 900)
//!     .attribute("x2", 1000, 1010)
//!     .build();
//! // Table 3 of the paper: s ⊑ s1 ∨ s2, though neither s1 nor s2 covers s.
//! let s = Subscription::builder(&schema)
//!     .range("x1", 830, 870).range("x2", 1003, 1006).build()?;
//! let s1 = Subscription::builder(&schema)
//!     .range("x1", 820, 850).range("x2", 1001, 1007).build()?;
//! let s2 = Subscription::builder(&schema)
//!     .range("x1", 840, 880).range("x2", 1002, 1009).build()?;
//!
//! let checker = SubsumptionChecker::builder().error_probability(1e-10).build();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let decision = checker.check(&s, &[s1, s2], &mut rng);
//! assert!(matches!(decision.answer, CoverAnswer::Covered { .. }));
//! # Ok::<(), psc_model::ModelError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod active_set;
pub mod conflict;
pub mod corollaries;
pub mod engine;
pub mod exact;
pub mod mcs;
pub mod merge;
pub mod pairwise;
pub mod rho;
pub mod rspc;
pub mod witness;

pub use active_set::{ActiveSet, AdmissionPolicy, AdmissionStats};
pub use conflict::{ConflictEntry, ConflictTable, Side};
pub use engine::{
    CoverAnswer, CoverDecision, DecisionStage, EngineStats, SubsumptionChecker, SubsumptionConfig,
    SubsumptionConfigBuilder,
};
pub use exact::ExactChecker;
pub use mcs::{McsOutcome, MinimizedCoverSet};
pub use pairwise::PairwiseChecker;
pub use rho::WitnessEstimate;
pub use rspc::{Rspc, RspcOutcome};
pub use witness::PointWitness;
