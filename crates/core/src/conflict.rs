//! The conflict table (Definition 2 of the paper).
//!
//! A conflict table `T` is a `k × 2m` table relating a tested subscription `s`
//! to every simple predicate of a set `S = {s1, …, sk}`. Cell `T_i^j` holds
//! the *negated* predicate `¬s_i^j` when `s ∧ ¬s_i^j` is satisfiable, and is
//! *undefined* otherwise. On integer range predicates the satisfiable region
//! of `s ∧ ¬s_i^j` is a **strip** of `s`:
//!
//! - for a lower-bound predicate `x_j ≥ lo`: the strip `[s.lo_j, lo − 1]`,
//!   non-empty exactly when `s.lo_j < lo`;
//! - for an upper-bound predicate `x_j ≤ hi`: the strip `[hi + 1, s.hi_j]`,
//!   non-empty exactly when `s.hi_j > hi`.
//!
//! The table exposes everything downstream stages need: per-row defined
//! counts `t_i` (Corollary 3, MCS), strip geometry (Algorithm 2's witness
//! estimate), and conflict relations between entries (Definition 5, MCS).

use psc_model::{AttrId, Range, Subscription};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which simple predicate of an attribute a table column refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Side {
    /// The lower-bound predicate `x_j ≥ lo`; its negation selects values
    /// *below* the subscription.
    Low,
    /// The upper-bound predicate `x_j ≤ hi`; its negation selects values
    /// *above* the subscription.
    High,
}

impl Side {
    /// Both sides, in column order (`Low` first, as in the paper's layout).
    pub const BOTH: [Side; 2] = [Side::Low, Side::High];
}

impl fmt::Display for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Side::Low => write!(f, "<lo"),
            Side::High => write!(f, ">hi"),
        }
    }
}

/// A *defined* conflict-table entry: the negation `¬s_i^j` restricted to `s`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConflictEntry {
    /// Attribute the predicate constrains.
    pub attr: AttrId,
    /// Which bound of `si` is negated.
    pub side: Side,
    /// The satisfiable region of `s ∧ ¬s_i^j` on `attr` — a non-empty
    /// sub-range of `s.range(attr)` ("the part of `s` that `si` leaves
    /// uncovered on this attribute, on this side").
    pub strip: Range,
}

impl ConflictEntry {
    /// Whether this entry *conflicts* with `other` (Definition 5): the two
    /// negations cannot hold simultaneously inside `s`.
    ///
    /// On axis-aligned rectangles this happens exactly when both entries
    /// constrain the same attribute from opposite sides and their strips are
    /// disjoint. (Same-side strips always share their extreme point; strips on
    /// different attributes constrain independent coordinates.)
    ///
    /// Note: the definition additionally requires the entries to come from
    /// different rows; callers enforce that, as the entry itself does not know
    /// its row.
    pub fn conflicts_with(&self, other: &ConflictEntry) -> bool {
        self.attr == other.attr && self.side != other.side && !self.strip.intersects(&other.strip)
    }

    /// Number of integer points in the strip.
    pub fn strip_count(&self) -> u128 {
        self.strip.count()
    }
}

/// One row of the conflict table: the entries for a single subscription `si`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConflictRow {
    /// Flat cells in column order: `[attr0/Low, attr0/High, attr1/Low, …]`.
    /// `None` is the paper's *undefined*.
    cells: Vec<Option<ConflictEntry>>,
    /// `t_i`: number of defined cells.
    defined: usize,
}

impl ConflictRow {
    fn build(s: &Subscription, si: &Subscription) -> Self {
        let m = s.arity();
        let mut cells = Vec::with_capacity(2 * m);
        let mut defined = 0;
        for j in 0..m {
            let attr = AttrId(j);
            let s_range = s.range(attr);
            let si_range = si.range(attr);
            // ¬(x ≥ lo): x ≤ lo − 1, intersected with s.
            let low = s_range.below(si_range.lo()).map(|strip| ConflictEntry {
                attr,
                side: Side::Low,
                strip,
            });
            // ¬(x ≤ hi): x ≥ hi + 1, intersected with s.
            let high = s_range.above(si_range.hi()).map(|strip| ConflictEntry {
                attr,
                side: Side::High,
                strip,
            });
            defined += usize::from(low.is_some()) + usize::from(high.is_some());
            cells.push(low);
            cells.push(high);
        }
        ConflictRow { cells, defined }
    }

    /// `t_i`: the number of defined entries in this row.
    pub fn defined_count(&self) -> usize {
        self.defined
    }

    /// Whether every cell is undefined — Corollary 1: `s ⊑ si`.
    pub fn all_undefined(&self) -> bool {
        self.defined == 0
    }

    /// Whether every cell is defined — Corollary 2: `s` strictly covers `si`.
    pub fn all_defined(&self) -> bool {
        self.defined == self.cells.len()
    }

    /// The cell for `(attr, side)`.
    pub fn cell(&self, attr: AttrId, side: Side) -> Option<&ConflictEntry> {
        let idx = attr.0 * 2 + usize::from(side == Side::High);
        self.cells.get(idx).and_then(|c| c.as_ref())
    }

    /// Iterates over the defined entries of the row.
    pub fn defined_entries(&self) -> impl Iterator<Item = &ConflictEntry> {
        self.cells.iter().flatten()
    }
}

/// The conflict table `T` for a subscription `s` against a set `S`.
///
/// Construction is `O(m·k)` (Definition 2): each cell is decided by two
/// integer comparisons.
///
/// # Example
/// ```
/// use psc_core::{ConflictTable, Side};
/// use psc_model::{AttrId, Schema, Subscription};
///
/// let schema = Schema::builder()
///     .attribute("x1", 800, 900).attribute("x2", 1000, 1010).build();
/// let s = Subscription::builder(&schema)
///     .range("x1", 830, 870).range("x2", 1003, 1006).build()?;
/// let s1 = Subscription::builder(&schema)
///     .range("x1", 820, 850).range("x2", 1001, 1007).build()?;
/// let s2 = Subscription::builder(&schema)
///     .range("x1", 840, 880).range("x2", 1002, 1009).build()?;
///
/// // Table 5 of the paper: the only defined entries are
/// //   row s1: x1 > 850   and   row s2: x1 < 840.
/// let t = ConflictTable::build(&s, &[s1, s2]);
/// assert_eq!(t.row(0).defined_count(), 1);
/// assert!(t.row(0).cell(AttrId(0), Side::High).is_some());
/// assert_eq!(t.row(1).defined_count(), 1);
/// assert!(t.row(1).cell(AttrId(0), Side::Low).is_some());
/// # Ok::<(), psc_model::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConflictTable {
    rows: Vec<ConflictRow>,
    arity: usize,
}

impl ConflictTable {
    /// Builds the table relating `s` to every subscription in `set`.
    ///
    /// # Panics
    /// In debug builds, panics if arities differ (schema mismatch between `s`
    /// and a member of `set`).
    pub fn build(s: &Subscription, set: &[Subscription]) -> Self {
        let rows = set
            .iter()
            .map(|si| {
                debug_assert_eq!(s.arity(), si.arity(), "subscriptions must share a schema");
                ConflictRow::build(s, si)
            })
            .collect();
        ConflictTable {
            rows,
            arity: s.arity(),
        }
    }

    /// Number of rows (`k`).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of attributes (`m`); the table has `2m` columns.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The row for subscription `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    pub fn row(&self, i: usize) -> &ConflictRow {
        &self.rows[i]
    }

    /// Iterates over rows in insertion order.
    pub fn rows(&self) -> impl Iterator<Item = &ConflictRow> {
        self.rows.iter()
    }

    /// The defined-entry counts `t_1 … t_k` in row order.
    pub fn defined_counts(&self) -> Vec<usize> {
        self.rows.iter().map(|r| r.defined).collect()
    }

    /// Removes a set of rows (given as a sorted list of indices) and returns
    /// the surviving row indices in their original order. Used by MCS.
    pub(crate) fn retain_rows(&mut self, keep: &[bool]) {
        debug_assert_eq!(keep.len(), self.rows.len());
        let mut idx = 0;
        self.rows.retain(|_| {
            let k = keep[idx];
            idx += 1;
            k
        });
    }

    /// Computes, for every row, the number of *conflict-free* defined entries
    /// (`fc_i`, Definition 5 / Proposition 3).
    ///
    /// A defined entry is conflict-free when it conflicts with no defined
    /// entry of any **other** row. On ranges, an entry `e` can only conflict
    /// with opposite-side entries on the same attribute whose strip misses
    /// `e.strip`; for `Low` entries (strip glued to `s`'s lower edge) the only
    /// candidates are `High` entries with a strictly higher strip start, and
    /// vice versa. Tracking the two extreme opposing bounds per attribute
    /// (to skip the entry's own row) makes the whole computation `O(m·k)`
    /// instead of the paper's `O(m²·k²)` bound.
    pub fn conflict_free_counts(&self) -> Vec<usize> {
        let m = self.arity;
        let k = self.rows.len();

        // Per attribute: the two largest `strip.lo` among High entries (with
        // row of the max), and the two smallest `strip.hi` among Low entries.
        #[derive(Clone, Copy)]
        struct Extreme {
            best: Option<(i64, usize)>,
            second: Option<i64>,
        }
        impl Extreme {
            const EMPTY: Extreme = Extreme {
                best: None,
                second: None,
            };
            fn push(&mut self, v: i64, row: usize, prefer_larger: bool) {
                let better = |a: i64, b: i64| if prefer_larger { a > b } else { a < b };
                match self.best {
                    None => self.best = Some((v, row)),
                    Some((bv, _)) if better(v, bv) => {
                        self.second = Some(bv);
                        self.best = Some((v, row));
                    }
                    Some(_) => match self.second {
                        None => self.second = Some(v),
                        Some(sv) if better(v, sv) => self.second = Some(v),
                        Some(_) => {}
                    },
                }
            }
            /// Extreme value over all rows except `row`.
            fn excluding(&self, row: usize) -> Option<i64> {
                match self.best {
                    Some((v, r)) if r != row => Some(v),
                    Some(_) => self.second,
                    None => None,
                }
            }
        }

        let mut high_lo_max = vec![Extreme::EMPTY; m]; // largest strip.lo among High entries
        let mut low_hi_min = vec![Extreme::EMPTY; m]; // smallest strip.hi among Low entries
        for (i, row) in self.rows.iter().enumerate() {
            for e in row.defined_entries() {
                match e.side {
                    Side::High => high_lo_max[e.attr.0].push(e.strip.lo(), i, true),
                    Side::Low => low_hi_min[e.attr.0].push(e.strip.hi(), i, false),
                }
            }
        }

        let mut out = Vec::with_capacity(k);
        for (i, row) in self.rows.iter().enumerate() {
            let mut fc = 0;
            for e in row.defined_entries() {
                let conflicting = match e.side {
                    // A Low strip [s.lo, a] conflicts with a High strip
                    // [b, s.hi] of another row iff b > a.
                    Side::Low => high_lo_max[e.attr.0]
                        .excluding(i)
                        .is_some_and(|b| b > e.strip.hi()),
                    // Symmetrically for High strips.
                    Side::High => low_hi_min[e.attr.0]
                        .excluding(i)
                        .is_some_and(|a| a < e.strip.lo()),
                };
                if !conflicting {
                    fc += 1;
                }
            }
            out.push(fc);
        }
        out
    }

    /// Brute-force `fc_i` computation straight from Definition 5, `O(m²k²)`.
    ///
    /// Kept public for differential testing against
    /// [`ConflictTable::conflict_free_counts`].
    pub fn conflict_free_counts_naive(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.rows.len());
        for (i, row) in self.rows.iter().enumerate() {
            let mut fc = 0;
            for e in row.defined_entries() {
                let mut conflicting = false;
                'outer: for (i2, row2) in self.rows.iter().enumerate() {
                    if i2 == i {
                        continue;
                    }
                    for e2 in row2.defined_entries() {
                        if e.conflicts_with(e2) {
                            conflicting = true;
                            break 'outer;
                        }
                    }
                }
                if !conflicting {
                    fc += 1;
                }
            }
            out.push(fc);
        }
        out
    }
}

impl fmt::Display for ConflictTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "conflict table ({} rows × {} attrs):",
            self.rows.len(),
            self.arity
        )?;
        for (i, row) in self.rows.iter().enumerate() {
            write!(f, "  s{i}:")?;
            if row.all_undefined() {
                write!(f, " (all undefined)")?;
            }
            for e in row.defined_entries() {
                write!(f, " [{} {} strip {}]", e.attr, e.side, e.strip)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psc_model::Schema;

    fn schema2() -> Schema {
        Schema::builder()
            .attribute("x1", 800, 900)
            .attribute("x2", 1000, 1010)
            .build()
    }

    fn sub(schema: &Schema, x1: (i64, i64), x2: (i64, i64)) -> Subscription {
        Subscription::builder(schema)
            .range("x1", x1.0, x1.1)
            .range("x2", x2.0, x2.1)
            .build()
            .unwrap()
    }

    /// Table 5 of the paper, exactly.
    #[test]
    fn table5_reproduction() {
        let schema = schema2();
        let s = sub(&schema, (830, 870), (1003, 1006));
        let s1 = sub(&schema, (820, 850), (1001, 1007));
        let s2 = sub(&schema, (840, 880), (1002, 1009));
        let t = ConflictTable::build(&s, &[s1, s2]);

        // Row s1: only x1 > 850 defined; strip is [851, 870].
        let r1 = t.row(0);
        assert_eq!(r1.defined_count(), 1);
        assert!(r1.cell(AttrId(0), Side::Low).is_none());
        let e = r1.cell(AttrId(0), Side::High).unwrap();
        assert_eq!(e.strip, Range::new(851, 870).unwrap());
        assert!(r1.cell(AttrId(1), Side::Low).is_none());
        assert!(r1.cell(AttrId(1), Side::High).is_none());

        // Row s2: only x1 < 840 defined; strip is [830, 839].
        let r2 = t.row(1);
        assert_eq!(r2.defined_count(), 1);
        let e = r2.cell(AttrId(0), Side::Low).unwrap();
        assert_eq!(e.strip, Range::new(830, 839).unwrap());
    }

    /// Table 8 of the paper (conflict-free example, Figure 4).
    #[test]
    fn table8_conflict_free_entries() {
        let schema = schema2();
        let s = sub(&schema, (830, 870), (1003, 1006));
        let s1 = sub(&schema, (820, 850), (1001, 1007));
        let s2 = sub(&schema, (840, 880), (1002, 1009));
        // s3 spans all of x1 but covers only x2 ∈ [1004, 1005] of s.
        let s3 = sub(&schema, (810, 890), (1004, 1005));
        let t = ConflictTable::build(&s, &[s1, s2, s3]);

        assert_eq!(t.defined_counts(), vec![1, 1, 2]);
        // s3's entries: x2 < 1004 (strip [1003,1003]) and x2 > 1005 (strip [1006,1006]).
        let r3 = t.row(2);
        assert_eq!(
            r3.cell(AttrId(1), Side::Low).unwrap().strip,
            Range::point(1003)
        );
        assert_eq!(
            r3.cell(AttrId(1), Side::High).unwrap().strip,
            Range::point(1006)
        );

        // fc: s1's entry (x1 > 850) conflicts with s2's (x1 < 840) — strips
        // [851,870] and [830,839] are disjoint, opposite sides. s3's x2
        // entries conflict with nothing (no opposing x2 entries elsewhere).
        let fc = t.conflict_free_counts();
        assert_eq!(fc, vec![0, 0, 2]);
        assert_eq!(fc, t.conflict_free_counts_naive());
    }

    #[test]
    fn all_undefined_detects_pairwise_cover() {
        let schema = schema2();
        let s = sub(&schema, (830, 870), (1003, 1006));
        let cover = sub(&schema, (820, 880), (1001, 1008));
        let t = ConflictTable::build(&s, &[cover]);
        assert!(t.row(0).all_undefined());
        assert!(!t.row(0).all_defined());
    }

    #[test]
    fn all_defined_detects_reverse_cover() {
        let schema = schema2();
        let s = sub(&schema, (820, 880), (1001, 1008));
        let inner = sub(&schema, (830, 870), (1003, 1006));
        let t = ConflictTable::build(&s, &[inner]);
        assert!(t.row(0).all_defined());
        assert_eq!(t.row(0).defined_count(), 4);
    }

    #[test]
    fn boundary_touching_is_not_defined() {
        // si shares s's lower bound on x1: no strip below.
        let schema = schema2();
        let s = sub(&schema, (830, 870), (1003, 1006));
        let si = sub(&schema, (830, 850), (1003, 1006));
        let t = ConflictTable::build(&s, &[si]);
        assert!(t.row(0).cell(AttrId(0), Side::Low).is_none());
        assert!(t.row(0).cell(AttrId(0), Side::High).is_some());
        assert!(t.row(0).cell(AttrId(1), Side::Low).is_none());
        assert!(t.row(0).cell(AttrId(1), Side::High).is_none());
    }

    #[test]
    fn conflicts_require_same_attr_opposite_side_disjoint_strips() {
        let a = ConflictEntry {
            attr: AttrId(0),
            side: Side::High,
            strip: Range::new(851, 870).unwrap(),
        };
        let b = ConflictEntry {
            attr: AttrId(0),
            side: Side::Low,
            strip: Range::new(830, 839).unwrap(),
        };
        assert!(a.conflicts_with(&b));
        assert!(b.conflicts_with(&a));

        // Same side never conflicts.
        let c = ConflictEntry {
            attr: AttrId(0),
            side: Side::High,
            strip: Range::new(861, 870).unwrap(),
        };
        assert!(!a.conflicts_with(&c));

        // Different attribute never conflicts.
        let d = ConflictEntry {
            attr: AttrId(1),
            side: Side::Low,
            strip: Range::new(1003, 1003).unwrap(),
        };
        assert!(!a.conflicts_with(&d));

        // Opposite sides with overlapping strips do not conflict.
        let e = ConflictEntry {
            attr: AttrId(0),
            side: Side::Low,
            strip: Range::new(830, 860).unwrap(),
        };
        assert!(!a.conflicts_with(&e));
    }

    #[test]
    fn empty_table() {
        let schema = schema2();
        let s = sub(&schema, (830, 870), (1003, 1006));
        let t = ConflictTable::build(&s, &[]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.conflict_free_counts().is_empty());
    }

    #[test]
    fn display_mentions_rows() {
        let schema = schema2();
        let s = sub(&schema, (830, 870), (1003, 1006));
        let s1 = sub(&schema, (820, 880), (1001, 1008));
        let t = ConflictTable::build(&s, &[s1]);
        let txt = t.to_string();
        assert!(txt.contains("all undefined"));
    }
}
