//! The fast-decision subsumption engine (Algorithm 4 of the paper).
//!
//! Pipeline for a query "is `s` covered by `S`?":
//!
//! 1. **Corollary 1** — a conflict-table row with no defined entries means a
//!    single subscription covers `s`: deterministic YES in `O(m·k)`.
//! 2. **Corollary 3** — the sorted defined-count test detects a polyhedron
//!    witness: deterministic NO.
//! 3. **MCS** — reduce the set; an empty result is a deterministic NO; a
//!    non-empty result shrinks `k` and (typically dramatically) boosts the
//!    witness-probability estimate. Corollary 3 is re-checked on the reduced
//!    table (sound because MCS preserves the cover answer).
//! 4. **RSPC** — the Monte-Carlo test with budget `d` derived from the target
//!    error probability `δ` via Algorithm 2, clamped by a configurable cap.
//!
//! Every stage can be toggled for ablation studies; the emitted
//! [`EngineStats`] expose exactly the quantities the paper plots (theoretical
//! `log10 d`, actual iterations, reduction ratios).

use crate::conflict::ConflictTable;
use crate::corollaries;
use crate::mcs::MinimizedCoverSet;
use crate::rho::WitnessEstimate;
use crate::rspc::{Rspc, RspcOutcome};
use crate::witness::PointWitness;
use psc_model::Subscription;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which pipeline stage produced the decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DecisionStage {
    /// The existing set was empty (vacuous deterministic NO).
    EmptySet,
    /// Corollary 1: a single subscription covers `s`.
    PairwiseCover,
    /// Corollary 3 on the original table: a polyhedron witness exists.
    PolyhedronWitness,
    /// MCS reduced the candidate set to nothing.
    EmptyMcs,
    /// Corollary 3 re-checked on the MCS-reduced table.
    PolyhedronWitnessAfterMcs,
    /// The Monte-Carlo RSPC test decided.
    Rspc,
}

impl DecisionStage {
    /// Whether decisions from this stage are deterministic (RSPC YES answers
    /// are the only probabilistic ones; RSPC NO answers carry a witness and
    /// are deterministic despite the stage).
    pub fn is_fast_path(&self) -> bool {
        !matches!(self, DecisionStage::Rspc)
    }
}

/// The answer to a subsumption query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CoverAnswer {
    /// `s` is covered by the union of the set.
    Covered {
        /// Upper bound on the probability this answer is wrong; `0.0` for
        /// deterministic decisions (Corollary 1).
        error_bound: f64,
    },
    /// `s` is not covered — always deterministic.
    NotCovered {
        /// A concrete point witness when one was found and still verifies
        /// against the **full** original set. MCS-based NO decisions are
        /// sound without a point (Proposition 4 guarantees answer
        /// preservation), so this may be `None`.
        witness: Option<PointWitness>,
    },
}

impl CoverAnswer {
    /// Whether the answer asserts coverage.
    pub fn is_covered(&self) -> bool {
        matches!(self, CoverAnswer::Covered { .. })
    }
}

/// Diagnostics for one engine run — the quantities the paper's evaluation
/// section reports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct EngineStats {
    /// `k`: size of the input set.
    pub k_initial: usize,
    /// Set size surviving MCS (equals `k_initial` when MCS is disabled or
    /// not reached).
    pub k_after_mcs: usize,
    /// MCS passes run (0 when MCS disabled or not reached).
    pub mcs_passes: usize,
    /// `ρw` estimated by Algorithm 2 (on the reduced table when MCS ran).
    /// `NaN` when the pipeline decided before estimating.
    pub rho_w: f64,
    /// Theoretical iteration requirement `d` for the configured `δ`
    /// (possibly infinite); `NaN` when not computed.
    pub theoretical_d: f64,
    /// `log10` of the theoretical `d` — the Figure 7/9 quantity.
    pub log10_theoretical_d: f64,
    /// The RSPC budget actually granted after applying the cap.
    pub effective_budget: u64,
    /// RSPC iterations actually performed — the Figure 10/11 quantity.
    pub rspc_iterations: u64,
}

/// A complete decision: answer + provenance + diagnostics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoverDecision {
    /// The verdict.
    pub answer: CoverAnswer,
    /// The pipeline stage that produced it.
    pub stage: DecisionStage,
    /// Run diagnostics.
    pub stats: EngineStats,
}

impl CoverDecision {
    /// Whether `s` was declared covered.
    pub fn is_covered(&self) -> bool {
        self.answer.is_covered()
    }

    /// Whether the verdict is deterministic (error bound zero).
    pub fn is_deterministic(&self) -> bool {
        match &self.answer {
            CoverAnswer::Covered { error_bound } => *error_bound == 0.0,
            CoverAnswer::NotCovered { .. } => true,
        }
    }
}

/// Engine configuration. Build with [`SubsumptionConfig::builder`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SubsumptionConfig {
    /// Target error probability `δ` for probabilistic YES answers.
    pub error_probability: f64,
    /// Hard cap on RSPC iterations. When the theoretical `d` exceeds the
    /// cap, the achieved error bound `(1 − ρw)^cap` is reported instead of
    /// `δ`.
    pub max_iterations: u64,
    /// Enable the Corollary-1 pairwise fast path.
    pub pairwise_fast_path: bool,
    /// Enable the Corollary-3 polyhedron-witness fast path.
    pub corollary3_fast_path: bool,
    /// Enable the MCS reduction.
    pub mcs: bool,
    /// Drop set members that do not intersect `s` before building the
    /// conflict table. Sound: a disjoint subscription contributes nothing to
    /// a cover of `s` (MCS would remove it anyway — its conflict-table
    /// entries include a full-width strip that conflicts with nothing), but
    /// the `O(m·k)` prefilter is far cheaper than the reduction fixpoint.
    pub prefilter_disjoint: bool,
}

impl Default for SubsumptionConfig {
    fn default() -> Self {
        SubsumptionConfig {
            error_probability: 1e-6,
            max_iterations: 1_000_000,
            pairwise_fast_path: true,
            corollary3_fast_path: true,
            mcs: true,
            prefilter_disjoint: true,
        }
    }
}

impl SubsumptionConfig {
    /// Starts a builder with the defaults above.
    pub fn builder() -> SubsumptionConfigBuilder {
        SubsumptionConfigBuilder {
            config: SubsumptionConfig::default(),
        }
    }
}

/// Builder for [`SubsumptionConfig`] (and, via
/// [`SubsumptionConfigBuilder::build`], for [`SubsumptionChecker`]).
#[derive(Debug, Clone)]
pub struct SubsumptionConfigBuilder {
    config: SubsumptionConfig,
}

impl SubsumptionConfigBuilder {
    /// Sets the target error probability `δ`.
    ///
    /// # Panics
    /// Panics unless `0 < delta < 1`.
    pub fn error_probability(mut self, delta: f64) -> Self {
        assert!(
            delta > 0.0 && delta < 1.0,
            "delta must be in (0, 1), got {delta}"
        );
        self.config.error_probability = delta;
        self
    }

    /// Sets the RSPC iteration cap.
    pub fn max_iterations(mut self, cap: u64) -> Self {
        self.config.max_iterations = cap;
        self
    }

    /// Enables/disables the Corollary-1 fast path.
    pub fn pairwise_fast_path(mut self, on: bool) -> Self {
        self.config.pairwise_fast_path = on;
        self
    }

    /// Enables/disables the Corollary-3 fast path.
    pub fn corollary3_fast_path(mut self, on: bool) -> Self {
        self.config.corollary3_fast_path = on;
        self
    }

    /// Enables/disables MCS reduction.
    pub fn mcs(mut self, on: bool) -> Self {
        self.config.mcs = on;
        self
    }

    /// Enables/disables the disjoint-subscription prefilter.
    pub fn prefilter_disjoint(mut self, on: bool) -> Self {
        self.config.prefilter_disjoint = on;
        self
    }

    /// Finalizes into a checker.
    pub fn build(self) -> SubsumptionChecker {
        SubsumptionChecker {
            config: self.config,
        }
    }

    /// Finalizes into a bare config.
    pub fn build_config(self) -> SubsumptionConfig {
        self.config
    }
}

/// The full probabilistic subsumption checker (Algorithm 4).
///
/// See the [crate-level docs](crate) for a worked example.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SubsumptionChecker {
    config: SubsumptionConfig,
}

impl SubsumptionChecker {
    /// Starts a configuration builder.
    pub fn builder() -> SubsumptionConfigBuilder {
        SubsumptionConfig::builder()
    }

    /// Creates a checker from an explicit config.
    pub fn with_config(config: SubsumptionConfig) -> Self {
        SubsumptionChecker { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &SubsumptionConfig {
        &self.config
    }

    /// Decides whether `s` is covered by the union of `set`.
    ///
    /// Deterministic given the RNG seed. NO answers are always correct; YES
    /// answers are wrong with probability at most the reported error bound
    /// (Proposition 1).
    pub fn check<R: Rng + ?Sized>(
        &self,
        s: &Subscription,
        set: &[Subscription],
        rng: &mut R,
    ) -> CoverDecision {
        let mut stats = EngineStats {
            k_initial: set.len(),
            k_after_mcs: set.len(),
            rho_w: f64::NAN,
            theoretical_d: f64::NAN,
            log10_theoretical_d: f64::NAN,
            ..EngineStats::default()
        };

        if set.is_empty() {
            return CoverDecision {
                answer: CoverAnswer::NotCovered { witness: None },
                stage: DecisionStage::EmptySet,
                stats,
            };
        }

        // Stage 0: drop members that cannot contribute to any cover of s.
        let filtered: Vec<Subscription>;
        let set: &[Subscription] = if self.config.prefilter_disjoint {
            filtered = set.iter().filter(|si| si.intersects(s)).cloned().collect();
            if filtered.is_empty() {
                stats.k_after_mcs = 0;
                return CoverDecision {
                    answer: CoverAnswer::NotCovered { witness: None },
                    stage: DecisionStage::EmptyMcs,
                    stats,
                };
            }
            &filtered
        } else {
            set
        };

        let table = ConflictTable::build(s, set);

        // Stage 1: Corollary 1 — pairwise cover.
        if self.config.pairwise_fast_path && corollaries::pairwise_cover(&table).is_some() {
            return CoverDecision {
                answer: CoverAnswer::Covered { error_bound: 0.0 },
                stage: DecisionStage::PairwiseCover,
                stats,
            };
        }

        // Stage 2: Corollary 3 — polyhedron witness on the full table.
        if self.config.corollary3_fast_path && corollaries::polyhedron_witness_exists(&table) {
            return CoverDecision {
                answer: CoverAnswer::NotCovered { witness: None },
                stage: DecisionStage::PolyhedronWitness,
                stats,
            };
        }

        // Stage 3: MCS reduction.
        let (work_table, work_set): (ConflictTable, Vec<Subscription>) = if self.config.mcs {
            let outcome = MinimizedCoverSet::reduce_table(table);
            stats.mcs_passes = outcome.passes;
            stats.k_after_mcs = outcome.kept.len();
            if outcome.is_empty() {
                return CoverDecision {
                    answer: CoverAnswer::NotCovered { witness: None },
                    stage: DecisionStage::EmptyMcs,
                    stats,
                };
            }
            // Corollary 3 is sound on the reduced set because MCS preserves
            // the cover answer (Proposition 4).
            if self.config.corollary3_fast_path
                && corollaries::polyhedron_witness_exists(&outcome.table)
            {
                return CoverDecision {
                    answer: CoverAnswer::NotCovered { witness: None },
                    stage: DecisionStage::PolyhedronWitnessAfterMcs,
                    stats,
                };
            }
            let kept = outcome.kept_subscriptions(set);
            (outcome.table, kept)
        } else {
            (table, set.to_vec())
        };

        // Stage 4: RSPC with Algorithm-2-derived budget.
        let estimate = WitnessEstimate::from_table(s, &work_table);
        stats.rho_w = estimate.rho_w();
        stats.theoretical_d = estimate.iterations_for(self.config.error_probability);
        stats.log10_theoretical_d = estimate.log10_iterations(self.config.error_probability);
        let budget = if stats.theoretical_d.is_finite() {
            (stats.theoretical_d as u64).min(self.config.max_iterations)
        } else {
            self.config.max_iterations
        };
        stats.effective_budget = budget;

        match Rspc::new(budget).run(s, &work_set, rng) {
            RspcOutcome::NotCovered {
                witness,
                iterations,
            } => {
                stats.rspc_iterations = iterations;
                // The witness was found against the reduced set; keep it only
                // if it also verifies against the full set (the NO answer is
                // correct either way by MCS answer preservation).
                let witness = witness.holds_against(s, set).then_some(witness);
                CoverDecision {
                    answer: CoverAnswer::NotCovered { witness },
                    stage: DecisionStage::Rspc,
                    stats,
                }
            }
            RspcOutcome::ProbablyCovered { iterations } => {
                stats.rspc_iterations = iterations;
                let error_bound = estimate
                    .error_after(budget)
                    .max(self.config.error_probability.min(1.0));
                CoverDecision {
                    answer: CoverAnswer::Covered { error_bound },
                    stage: DecisionStage::Rspc,
                    stats,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psc_model::Schema;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schema2() -> Schema {
        Schema::builder()
            .attribute("x1", 800, 900)
            .attribute("x2", 1000, 1010)
            .build()
    }

    fn sub(schema: &Schema, x1: (i64, i64), x2: (i64, i64)) -> Subscription {
        Subscription::builder(schema)
            .range("x1", x1.0, x1.1)
            .range("x2", x2.0, x2.1)
            .build()
            .unwrap()
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn empty_set_is_not_covered() {
        let schema = schema2();
        let s = sub(&schema, (830, 870), (1003, 1006));
        let d = SubsumptionChecker::default().check(&s, &[], &mut rng());
        assert_eq!(d.stage, DecisionStage::EmptySet);
        assert!(!d.is_covered());
        assert!(d.is_deterministic());
    }

    #[test]
    fn pairwise_cover_short_circuits() {
        let schema = schema2();
        let s = sub(&schema, (830, 870), (1003, 1006));
        let wide = sub(&schema, (800, 900), (1000, 1010));
        let d = SubsumptionChecker::default().check(&s, &[wide], &mut rng());
        assert_eq!(d.stage, DecisionStage::PairwiseCover);
        assert!(d.is_covered());
        assert!(d.is_deterministic());
        assert_eq!(d.stats.rspc_iterations, 0);
    }

    #[test]
    fn table3_group_cover_found_probabilistically() {
        let schema = schema2();
        let s = sub(&schema, (830, 870), (1003, 1006));
        let s1 = sub(&schema, (820, 850), (1001, 1007));
        let s2 = sub(&schema, (840, 880), (1002, 1009));
        let checker = SubsumptionChecker::builder()
            .error_probability(1e-10)
            .build();
        let d = checker.check(&s, &[s1, s2], &mut rng());
        assert!(d.is_covered());
        assert_eq!(d.stage, DecisionStage::Rspc);
        assert!(!d.is_deterministic());
        match d.answer {
            CoverAnswer::Covered { error_bound } => assert!(error_bound <= 1e-9),
            _ => unreachable!(),
        }
        // MCS keeps both; ρw and d were estimated.
        assert_eq!(d.stats.k_after_mcs, 2);
        assert!(d.stats.rho_w > 0.0);
        assert!(d.stats.effective_budget > 0);
        assert_eq!(d.stats.rspc_iterations, d.stats.effective_budget);
    }

    #[test]
    fn figure3_non_cover_decided_deterministically() {
        let schema = schema2();
        let s = sub(&schema, (830, 890), (1003, 1006));
        let s1 = sub(&schema, (820, 850), (1002, 1009));
        let s2 = sub(&schema, (840, 870), (1001, 1007));
        let d = SubsumptionChecker::default().check(&s, &[s1, s2], &mut rng());
        assert!(!d.is_covered());
        // Corollary 3 fires: counts sorted [1, 2] pass the test.
        assert_eq!(d.stage, DecisionStage::PolyhedronWitness);
    }

    #[test]
    fn no_intersection_scenario_resolved_by_mcs() {
        // Disable Corollary 3 to force the MCS path.
        let schema = schema2();
        let s = sub(&schema, (830, 870), (1003, 1006));
        let far1 = sub(&schema, (880, 900), (1008, 1010));
        let far2 = sub(&schema, (800, 820), (1000, 1002));
        let checker = SubsumptionChecker::builder()
            .corollary3_fast_path(false)
            .build();
        let d = checker.check(&s, &[far1, far2], &mut rng());
        assert!(!d.is_covered());
        assert_eq!(d.stage, DecisionStage::EmptyMcs);
        assert_eq!(d.stats.k_after_mcs, 0);
    }

    #[test]
    fn rspc_no_carries_verified_witness() {
        // Narrow gap, all fast paths off: forces RSPC to find the witness.
        let schema = Schema::uniform(1, 0, 999);
        let s = Subscription::whole_space(&schema);
        let left = Subscription::builder(&schema)
            .range("x0", 0, 899)
            .build()
            .unwrap();
        let set = [left];
        let checker = SubsumptionChecker::builder()
            .pairwise_fast_path(false)
            .corollary3_fast_path(false)
            .mcs(false)
            .build();
        let d = checker.check(&s, &set, &mut rng());
        assert!(!d.is_covered());
        assert_eq!(d.stage, DecisionStage::Rspc);
        match d.answer {
            CoverAnswer::NotCovered { witness: Some(w) } => {
                assert!(w.holds_against(&s, &set));
            }
            other => panic!("expected witness, got {other:?}"),
        }
    }

    #[test]
    fn iteration_cap_weakens_error_bound() {
        let schema = schema2();
        let s = sub(&schema, (830, 870), (1003, 1006));
        let s1 = sub(&schema, (820, 850), (1001, 1007));
        let s2 = sub(&schema, (840, 880), (1002, 1009));
        let checker = SubsumptionChecker::builder()
            .error_probability(1e-10)
            .max_iterations(5)
            .build();
        let d = checker.check(&s, &[s1.clone(), s2.clone()], &mut rng());
        assert!(d.is_covered());
        match d.answer {
            CoverAnswer::Covered { error_bound } => {
                // 5 iterations at ρw ≈ 0.244 give roughly 0.75^5 ≈ 0.24.
                assert!(error_bound > 1e-10);
                assert!(error_bound < 1.0);
            }
            _ => unreachable!(),
        }
        assert_eq!(d.stats.effective_budget, 5);
    }

    #[test]
    fn ablation_disabling_everything_still_correct() {
        let schema = schema2();
        let s = sub(&schema, (830, 870), (1003, 1006));
        let wide = sub(&schema, (800, 900), (1000, 1010));
        let checker = SubsumptionChecker::builder()
            .pairwise_fast_path(false)
            .corollary3_fast_path(false)
            .mcs(false)
            .error_probability(1e-6)
            .build();
        // Covered pairwise, but only RSPC is allowed to find out.
        let d = checker.check(&s, &[wide], &mut rng());
        assert!(d.is_covered());
        assert_eq!(d.stage, DecisionStage::Rspc);
    }

    #[test]
    fn stats_k_fields_track_reduction() {
        let schema = schema2();
        let s = sub(&schema, (830, 870), (1003, 1006));
        let s1 = sub(&schema, (820, 850), (1001, 1007));
        let s2 = sub(&schema, (840, 880), (1002, 1009));
        let s3 = sub(&schema, (810, 890), (1004, 1005)); // MCS-redundant
        let checker = SubsumptionChecker::builder()
            .error_probability(1e-6)
            .build();
        let d = checker.check(&s, &[s1, s2, s3], &mut rng());
        assert_eq!(d.stats.k_initial, 3);
        assert_eq!(d.stats.k_after_mcs, 2);
        assert!(d.stats.mcs_passes >= 2);
        assert!(d.is_covered());
    }

    #[test]
    #[should_panic(expected = "delta must be in (0, 1)")]
    fn builder_rejects_bad_delta() {
        let _ = SubsumptionChecker::builder().error_probability(1.5);
    }

    #[test]
    fn decisions_are_reproducible_with_same_seed() {
        let schema = schema2();
        let s = sub(&schema, (830, 870), (1003, 1006));
        let s1 = sub(&schema, (820, 850), (1001, 1007));
        let s2 = sub(&schema, (840, 880), (1002, 1009));
        let checker = SubsumptionChecker::default();
        let d1 = checker.check(&s, &[s1.clone(), s2.clone()], &mut StdRng::seed_from_u64(5));
        let d2 = checker.check(&s, &[s1, s2], &mut StdRng::seed_from_u64(5));
        assert_eq!(d1, d2);
    }
}
