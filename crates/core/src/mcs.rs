//! MCS — Minimized Cover Set (Algorithm 3 of the paper).
//!
//! Reduces the subscription set to a non-reducible core sufficient to answer
//! the coverage question. Per Proposition 4, a subscription `si` is
//! *redundant* — removable without changing the answer — when its conflict
//! table row has
//!
//! - at least one **conflict-free** defined entry (`fc_i ≥ 1`), or
//! - at least as many defined entries as the current set size (`t_i ≥ k`).
//!
//! Removal conditions are monotone (removing a row only makes other rows
//! easier to remove: entries lose potential conflicts and `k` shrinks), so
//! repeated passes converge to a unique maximal fixpoint regardless of
//! removal order. The paper's pseudo-code writes `fc_i ≥ 0`, which would
//! delete every row; Proposition 4 states the intended `fc_i ≥ 1`, which we
//! implement.

use crate::conflict::ConflictTable;
use psc_model::Subscription;
use serde::{Deserialize, Serialize};

/// Result of an MCS reduction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct McsOutcome {
    /// Indices (into the original set) of the surviving subscriptions, in
    /// their original order. Empty means **no** candidate subset can cover
    /// `s`, i.e. a deterministic NO for the subsumption question.
    pub kept: Vec<usize>,
    /// Indices of removed (redundant) subscriptions.
    pub removed: Vec<usize>,
    /// Number of passes executed until the fixpoint (≥ 1).
    pub passes: usize,
    /// Conflict table of the reduced set (rows parallel `kept`).
    pub table: ConflictTable,
}

impl McsOutcome {
    /// Whether the reduction emptied the set (deterministic non-cover).
    pub fn is_empty(&self) -> bool {
        self.kept.is_empty()
    }

    /// The surviving subscriptions cloned out of the original set.
    pub fn kept_subscriptions(&self, set: &[Subscription]) -> Vec<Subscription> {
        self.kept.iter().map(|&i| set[i].clone()).collect()
    }

    /// Fraction of the original set removed (`0` for an originally empty set).
    pub fn reduction_ratio(&self) -> f64 {
        let total = self.kept.len() + self.removed.len();
        if total == 0 {
            0.0
        } else {
            self.removed.len() as f64 / total as f64
        }
    }
}

/// The Minimized Cover Set reduction.
///
/// # Example
/// ```
/// use psc_core::MinimizedCoverSet;
/// use psc_model::{Schema, Subscription};
///
/// let schema = Schema::builder()
///     .attribute("x1", 800, 900).attribute("x2", 1000, 1010).build();
/// let s = Subscription::builder(&schema)
///     .range("x1", 830, 870).range("x2", 1003, 1006).build()?;
/// let s1 = Subscription::builder(&schema)
///     .range("x1", 820, 850).range("x2", 1001, 1007).build()?;
/// let s2 = Subscription::builder(&schema)
///     .range("x1", 840, 880).range("x2", 1002, 1009).build()?;
/// // s3 covers only a middle slice of s on x2 — its entries are
/// // conflict-free, so MCS filters it out (the paper's Figure 4 example).
/// let s3 = Subscription::builder(&schema)
///     .range("x1", 810, 890).range("x2", 1004, 1005).build()?;
///
/// let out = MinimizedCoverSet::reduce(&s, &[s1, s2, s3]);
/// assert_eq!(out.kept, vec![0, 1]);
/// assert_eq!(out.removed, vec![2]);
/// # Ok::<(), psc_model::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct MinimizedCoverSet;

impl MinimizedCoverSet {
    /// Runs the reduction for `s` against `set`, building the conflict table
    /// internally.
    pub fn reduce(s: &Subscription, set: &[Subscription]) -> McsOutcome {
        Self::reduce_table(ConflictTable::build(s, set))
    }

    /// Runs the reduction on a prebuilt conflict table (consumed and returned
    /// reduced inside the outcome).
    pub fn reduce_table(mut table: ConflictTable) -> McsOutcome {
        let original_k = table.len();
        let mut kept: Vec<usize> = (0..original_k).collect();
        let mut removed = Vec::new();
        let mut passes = 0;

        loop {
            passes += 1;
            let k = table.len();
            if k == 0 {
                break;
            }
            let fc = table.conflict_free_counts();
            let keep: Vec<bool> = table
                .rows()
                .enumerate()
                .map(|(i, row)| fc[i] == 0 && row.defined_count() < k)
                .collect();
            if keep.iter().all(|&b| b) {
                break;
            }
            let mut next_kept = Vec::with_capacity(k);
            for (i, &keep_it) in keep.iter().enumerate() {
                if keep_it {
                    next_kept.push(kept[i]);
                } else {
                    removed.push(kept[i]);
                }
            }
            table.retain_rows(&keep);
            kept = next_kept;
        }

        removed.sort_unstable();
        McsOutcome {
            kept,
            removed,
            passes,
            table,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psc_model::Schema;

    fn schema2() -> Schema {
        Schema::builder()
            .attribute("x1", 800, 900)
            .attribute("x2", 1000, 1010)
            .build()
    }

    fn sub(schema: &Schema, x1: (i64, i64), x2: (i64, i64)) -> Subscription {
        Subscription::builder(schema)
            .range("x1", x1.0, x1.1)
            .range("x2", x2.0, x2.1)
            .build()
            .unwrap()
    }

    /// The paper's worked example (Figure 4 / Table 8): MCS removes s3 in the
    /// first pass and then stops with {s1, s2}.
    #[test]
    fn figure4_example_reduces_to_s1_s2() {
        let schema = schema2();
        let s = sub(&schema, (830, 870), (1003, 1006));
        let s1 = sub(&schema, (820, 850), (1001, 1007));
        let s2 = sub(&schema, (840, 880), (1002, 1009));
        let s3 = sub(&schema, (810, 890), (1004, 1005));
        let out = MinimizedCoverSet::reduce(&s, &[s1, s2, s3]);
        assert_eq!(out.kept, vec![0, 1]);
        assert_eq!(out.removed, vec![2]);
        assert_eq!(out.passes, 2); // one removing pass + one fixpoint check
        assert!((out.reduction_ratio() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(out.table.len(), 2);
    }

    #[test]
    fn non_intersecting_subscriptions_are_removed() {
        // si disjoint from s has a full-width strip: conflict-free unless
        // opposed, and with a single row, t_i ≥ k = 1 also fires.
        let schema = schema2();
        let s = sub(&schema, (830, 870), (1003, 1006));
        let far = sub(&schema, (880, 900), (1008, 1010));
        let out = MinimizedCoverSet::reduce(&s, &[far]);
        assert!(out.is_empty());
        assert_eq!(out.removed, vec![0]);
    }

    #[test]
    fn single_partial_overlap_is_removed_via_t_ge_k() {
        // One subscription that fails to cover s: its row has ≥ 1 defined
        // entry, so t_1 ≥ k = 1 ⇒ removable ⇒ empty set ⇒ definite NO.
        let schema = schema2();
        let s = sub(&schema, (830, 870), (1003, 1006));
        let partial = sub(&schema, (820, 850), (1001, 1007));
        let out = MinimizedCoverSet::reduce(&s, &[partial]);
        assert!(out.is_empty());
    }

    #[test]
    fn pairwise_covering_row_survives() {
        // A row with zero defined entries (s ⊑ si) is never removed.
        let schema = schema2();
        let s = sub(&schema, (830, 870), (1003, 1006));
        let cover = sub(&schema, (800, 900), (1000, 1010));
        let out = MinimizedCoverSet::reduce(&s, &[cover]);
        assert_eq!(out.kept, vec![0]);
        assert!(out.removed.is_empty());
    }

    #[test]
    fn covering_pair_survives() {
        // Table 3's covering pair is non-reducible: their entries conflict
        // with each other and t_i = 1 < 2.
        let schema = schema2();
        let s = sub(&schema, (830, 870), (1003, 1006));
        let s1 = sub(&schema, (820, 850), (1001, 1007));
        let s2 = sub(&schema, (840, 880), (1002, 1009));
        let out = MinimizedCoverSet::reduce(&s, &[s1, s2]);
        assert_eq!(out.kept, vec![0, 1]);
    }

    #[test]
    fn cascading_removals_need_multiple_passes() {
        // Chain construction: s is [0, 99] on one attribute.
        //  - a covers [0, 89] (entry: x > 89, strip [90, 99])
        //  - b covers [80, 99] (entry: x < 80, strip [0, 79]) → a,b conflict.
        //  - c covers the slice [40, 49] only: entries x<40 ([0,39]) and
        //    x>49 ([50,99]); x<40 conflicts with nothing? b's strip [0,79]
        //    overlaps [0,39] — same side, no conflict; a's strip [90,99] is
        //    High vs c's Low [0,39]: disjoint → conflict. And c's High
        //    [50,99] vs b's Low [0,79]: overlap at [50,79] → no conflict.
        // So c's High entry is conflict-free? c High strip [50,99] vs Low
        // strips of a (none — a has only High) and b ([0,79]): intersects →
        // not conflicting → conflict-free ⇒ c removed first. After removing
        // c, a and b keep conflicting entries; t = 1 < 2 ⇒ fixpoint {a, b}.
        let schema = Schema::uniform(1, 0, 99);
        let s = Subscription::whole_space(&schema);
        let a = Subscription::builder(&schema)
            .range("x0", 0, 89)
            .build()
            .unwrap();
        let b = Subscription::builder(&schema)
            .range("x0", 80, 99)
            .build()
            .unwrap();
        let c = Subscription::builder(&schema)
            .range("x0", 40, 49)
            .build()
            .unwrap();
        let out = MinimizedCoverSet::reduce(&s, &[a, b, c]);
        assert_eq!(out.kept, vec![0, 1]);
        assert_eq!(out.removed, vec![2]);
    }

    #[test]
    fn empty_input_set() {
        let schema = schema2();
        let s = sub(&schema, (830, 870), (1003, 1006));
        let out = MinimizedCoverSet::reduce(&s, &[]);
        assert!(out.is_empty());
        assert_eq!(out.passes, 1);
        assert_eq!(out.reduction_ratio(), 0.0);
    }

    #[test]
    fn kept_subscriptions_clones_in_order() {
        let schema = schema2();
        let s = sub(&schema, (830, 870), (1003, 1006));
        let s1 = sub(&schema, (820, 850), (1001, 1007));
        let s2 = sub(&schema, (840, 880), (1002, 1009));
        let s3 = sub(&schema, (810, 890), (1004, 1005));
        let set = vec![s1.clone(), s2.clone(), s3];
        let out = MinimizedCoverSet::reduce(&s, &set);
        assert_eq!(out.kept_subscriptions(&set), vec![s1, s2]);
    }

    /// MCS preserves the cover answer on a brute-force-checkable instance.
    #[test]
    fn reduction_preserves_cover_answer_small_domain() {
        let schema = Schema::uniform(2, 0, 9);
        let s = Subscription::whole_space(&schema);
        let mk = |x: (i64, i64), y: (i64, i64)| {
            Subscription::builder(&schema)
                .range("x0", x.0, x.1)
                .range("x1", y.0, y.1)
                .build()
                .unwrap()
        };
        // Four quadrant-ish pieces + one redundant middle slab: covered.
        let set = vec![
            mk((0, 5), (0, 9)),
            mk((4, 9), (0, 6)),
            mk((4, 9), (5, 9)),
            mk((3, 6), (2, 7)), // redundant
        ];
        let brute = |subs: &[Subscription]| {
            (0..10).all(|x| (0..10).all(|y| subs.iter().any(|si| si.contains_point(&[x, y]))))
        };
        assert!(brute(&set));
        let out = MinimizedCoverSet::reduce(&s, &set);
        let reduced = out.kept_subscriptions(&set);
        assert_eq!(brute(&reduced), brute(&set));
    }
}
