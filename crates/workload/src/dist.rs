//! Distribution samplers used by the paper's subscription generators.
//!
//! Section 6.4: *"From the set of m attributes popular ones were chosen using
//! a Zipf distribution (skew = 2.0). The center of a range is generated with
//! a Pareto distribution (skew = 1.0) to simulate similar interests, while
//! range sizes are generated with a normal distribution."*
//!
//! These are deliberately small, dependency-free implementations (the
//! `rand_distr` crate is outside this project's allowed dependency set — see
//! DESIGN.md §5): Zipf via inverse-CDF on precomputed cumulative weights,
//! Pareto via inverse-CDF, Normal via Box–Muller.

use rand::Rng;

/// Zipf distribution over ranks `0..n` with weight `1/(rank+1)^skew`.
///
/// Rank 0 is the most popular item. Sampling is `O(log n)` via binary search
/// over the precomputed cumulative distribution.
///
/// # Example
/// ```
/// use psc_workload::dist::Zipf;
/// use psc_workload::seeded_rng;
/// let z = Zipf::new(10, 2.0);
/// let mut rng = seeded_rng(1);
/// let mut counts = [0usize; 10];
/// for _ in 0..10_000 { counts[z.sample(&mut rng)] += 1; }
/// // Rank 0 dominates rank 9 heavily at skew 2.
/// assert!(counts[0] > 20 * counts[9].max(1));
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf sampler over `n` ranks with the given skew.
    ///
    /// # Panics
    /// Panics if `n == 0` or `skew < 0`.
    pub fn new(n: usize, skew: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(skew >= 0.0, "skew must be non-negative");
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 0..n {
            acc += 1.0 / ((rank + 1) as f64).powf(skew);
            cumulative.push(acc);
        }
        Zipf { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the sampler has zero ranks (never true — `new` forbids it).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Samples a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let u = rng.gen_range(0.0..total);
        self.cumulative
            .partition_point(|&c| c <= u)
            .min(self.cumulative.len() - 1)
    }

    /// Samples `count` *distinct* ranks (by rejection), in popularity-biased
    /// order of first draw.
    ///
    /// # Panics
    /// Panics if `count > n`.
    pub fn sample_distinct<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> Vec<usize> {
        assert!(
            count <= self.len(),
            "cannot draw {count} distinct from {}",
            self.len()
        );
        let mut out = Vec::with_capacity(count);
        let mut seen = vec![false; self.len()];
        while out.len() < count {
            let r = self.sample(rng);
            if !seen[r] {
                seen[r] = true;
                out.push(r);
            }
        }
        out
    }
}

/// Pareto distribution with scale `x_m = 1` and shape `alpha` ("skew").
///
/// Samples `x = 1 / U^(1/alpha) ∈ [1, ∞)`; the paper uses `alpha = 1` for
/// range centers so that subscriber interests concentrate near the start of
/// the domain with a heavy tail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    alpha: f64,
}

impl Pareto {
    /// Creates a Pareto sampler with shape `alpha`.
    ///
    /// # Panics
    /// Panics if `alpha <= 0`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0, "alpha must be positive");
        Pareto { alpha }
    }

    /// Samples a value in `[1, ∞)`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // U ∈ (0, 1]; avoid U = 0 exactly.
        let u: f64 = 1.0 - rng.gen_range(0.0..1.0);
        u.powf(-1.0 / self.alpha)
    }

    /// Samples and maps onto an integer offset in `[0, width)`, where `scale`
    /// controls how much of `width` the Pareto body spans before clamping.
    ///
    /// With `alpha = 1`, roughly half the mass lands in the first
    /// `width/scale` values — the paper's "similar interests" clustering.
    pub fn sample_offset<R: Rng + ?Sized>(&self, rng: &mut R, width: u64, scale: f64) -> u64 {
        debug_assert!(width > 0);
        let x = self.sample(rng) - 1.0; // [0, ∞)
        let offset = (x * width as f64 / scale).floor();
        (offset as u64).min(width - 1)
    }
}

/// Normal distribution via the Box–Muller transform (both variates used
/// alternately would need state; we keep it stateless and draw fresh).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    sd: f64,
}

impl Normal {
    /// Creates a sampler with the given mean and standard deviation.
    ///
    /// # Panics
    /// Panics if `sd < 0`.
    pub fn new(mean: f64, sd: f64) -> Self {
        assert!(sd >= 0.0, "standard deviation must be non-negative");
        Normal { mean, sd }
    }

    /// Samples one value.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller: u1 ∈ (0, 1] to keep ln finite.
        let u1: f64 = 1.0 - rng.gen_range(0.0..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        self.mean + self.sd * z
    }

    /// Samples, clamped to `[lo, hi]`.
    pub fn sample_clamped<R: Rng + ?Sized>(&self, rng: &mut R, lo: f64, hi: f64) -> f64 {
        self.sample(rng).clamp(lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;

    #[test]
    fn zipf_rank_zero_most_popular() {
        let z = Zipf::new(20, 2.0);
        let mut rng = seeded_rng(11);
        let mut counts = [0usize; 20];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Monotone-ish decreasing head: rank 0 > rank 1 > rank 2.
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[2]);
        // Theoretical p(0) at skew 2 over 20 ranks ≈ 1/ζ ≈ 0.63.
        let p0 = counts[0] as f64 / 50_000.0;
        assert!((p0 - 0.63).abs() < 0.03, "p0 = {p0}");
    }

    #[test]
    fn zipf_skew_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        let mut rng = seeded_rng(3);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 500.0, "counts = {counts:?}");
        }
    }

    #[test]
    fn zipf_distinct_samples_are_distinct_and_complete() {
        let z = Zipf::new(8, 2.0);
        let mut rng = seeded_rng(5);
        let picked = z.sample_distinct(&mut rng, 8);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "cannot draw")]
    fn zipf_distinct_overdraw_panics() {
        let z = Zipf::new(3, 1.0);
        let mut rng = seeded_rng(1);
        let _ = z.sample_distinct(&mut rng, 4);
    }

    #[test]
    fn pareto_median_matches_theory() {
        // Median of Pareto(x_m=1, α=1) is 2.
        let p = Pareto::new(1.0);
        let mut rng = seeded_rng(9);
        let mut samples: Vec<f64> = (0..20_001).map(|_| p.sample(&mut rng)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[10_000];
        assert!((median - 2.0).abs() < 0.1, "median = {median}");
        assert!(samples.iter().all(|&x| x >= 1.0));
    }

    #[test]
    fn pareto_offset_clusters_low() {
        let p = Pareto::new(1.0);
        let mut rng = seeded_rng(13);
        let width = 10_000u64;
        let below_tenth = (0..10_000)
            .filter(|_| p.sample_offset(&mut rng, width, 10.0) < width / 10)
            .count();
        // With scale 10, offset < width/10 ⇔ pareto excess < 1 ⇔ U > 1/2.
        assert!((below_tenth as f64 / 10_000.0 - 0.5).abs() < 0.05);
        // Offsets never escape the width.
        for _ in 0..1_000 {
            assert!(p.sample_offset(&mut rng, width, 10.0) < width);
        }
    }

    #[test]
    fn normal_moments() {
        let n = Normal::new(50.0, 10.0);
        let mut rng = seeded_rng(21);
        let samples: Vec<f64> = (0..50_000).map(|_| n.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (samples.len() - 1) as f64;
        assert!((mean - 50.0).abs() < 0.2, "mean = {mean}");
        assert!((var.sqrt() - 10.0).abs() < 0.2, "sd = {}", var.sqrt());
    }

    #[test]
    fn normal_clamped_respects_bounds() {
        let n = Normal::new(0.0, 100.0);
        let mut rng = seeded_rng(2);
        for _ in 0..1_000 {
            let v = n.sample_clamped(&mut rng, -5.0, 5.0);
            assert!((-5.0..=5.0).contains(&v));
        }
    }

    #[test]
    fn normal_zero_sd_is_constant() {
        let n = Normal::new(3.5, 0.0);
        let mut rng = seeded_rng(4);
        for _ in 0..10 {
            assert_eq!(n.sample(&mut rng), 3.5);
        }
    }
}
