//! Scenario (1-2): the realistic comparison stream (Section 6.4).
//!
//! *"Due to the lack of real-world subscription set, we have simulated a
//! setting using power law distributions … From the set of m attributes
//! popular ones were chosen using a Zipf distribution (skew = 2.0).
//! Attributes are generated in the following way: The center of a range is
//! generated with a Pareto distribution (skew = 1.0) to simulate similar
//! interests, while range sizes are generated with a normal distribution."*
//!
//! The stream feeds the pairwise-vs-group comparison of Figures 13 and 14.

use crate::dist::{Normal, Pareto, Zipf};
use psc_model::{Range, Schema, Subscription};
use rand::Rng;

/// Generator of realistic subscription streams.
///
/// # Example
/// ```
/// use psc_workload::{ComparisonWorkload, seeded_rng};
/// let wl = ComparisonWorkload::new(10);
/// let mut rng = seeded_rng(42);
/// let subs = wl.stream(100, &mut rng);
/// assert_eq!(subs.len(), 100);
/// // Unpopular attributes are usually unconstrained (full domain).
/// let constrained: usize = subs.iter()
///     .map(|s| s.ranges().iter().filter(|r| r.count() < 100_000).count())
///     .sum();
/// assert!(constrained > 0);
/// ```
#[derive(Debug, Clone)]
pub struct ComparisonWorkload {
    /// Number of attributes.
    pub m: usize,
    /// Attribute domain (inclusive).
    pub domain: (i64, i64),
    /// Zipf skew for attribute popularity (paper: 2.0).
    pub attr_skew: f64,
    /// Pareto shape for range centers (paper: 1.0).
    pub center_alpha: f64,
    /// Scale applied when mapping Pareto excess onto the domain: roughly half
    /// of the centers fall within `width/scale` of the domain start.
    pub center_scale: f64,
    /// Mean range width as a fraction of the domain width.
    pub width_mean_frac: f64,
    /// Standard deviation of range width as a fraction of the domain width.
    pub width_sd_frac: f64,
    /// Bounds on how many attributes one subscription constrains.
    pub constrained: (usize, usize),
}

impl ComparisonWorkload {
    /// Creates the paper's configuration for `m` attributes over a
    /// 100 000-point domain.
    pub fn new(m: usize) -> Self {
        ComparisonWorkload {
            m,
            domain: (0, 99_999),
            attr_skew: 2.0,
            center_alpha: 1.0,
            center_scale: 8.0,
            width_mean_frac: 0.30,
            width_sd_frac: 0.12,
            constrained: (2, 6.min(m)),
        }
    }

    /// The schema of the stream.
    pub fn schema(&self) -> Schema {
        Schema::uniform(self.m, self.domain.0, self.domain.1)
    }

    /// Generates one subscription.
    pub fn subscription<R: Rng + ?Sized>(&self, schema: &Schema, rng: &mut R) -> Subscription {
        let zipf = Zipf::new(self.m, self.attr_skew);
        let pareto = Pareto::new(self.center_alpha);
        let width_dist = Normal::new(
            self.width_mean_frac * self.domain_width() as f64,
            self.width_sd_frac * self.domain_width() as f64,
        );

        let count = rng.gen_range(self.constrained.0..=self.constrained.1.max(self.constrained.0));
        let chosen = zipf.sample_distinct(rng, count.min(self.m));

        let mut ranges: Vec<Range> = schema.iter().map(|(_, a)| *a.domain()).collect();
        for attr in chosen {
            ranges[attr] = self.constrained_range(&pareto, &width_dist, rng);
        }
        Subscription::from_ranges(schema, ranges).expect("ranges clamped to domain")
    }

    /// Generates a stream of `n` subscriptions.
    pub fn stream<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<Subscription> {
        let schema = self.schema();
        (0..n).map(|_| self.subscription(&schema, rng)).collect()
    }

    /// Generates one publication whose coordinates follow the same
    /// popularity distribution as subscription centers, so that realistic
    /// fractions of subscriptions match (used by the broker-network
    /// experiments).
    pub fn publication<R: Rng + ?Sized>(
        &self,
        schema: &psc_model::Schema,
        rng: &mut R,
    ) -> psc_model::Publication {
        let pareto = Pareto::new(self.center_alpha);
        let w = self.domain_width();
        let values = (0..self.m)
            .map(|_| self.domain.0 + pareto.sample_offset(rng, w, self.center_scale) as i64)
            .collect();
        psc_model::Publication::from_values(schema, values)
            .expect("offsets clamped inside the domain")
    }

    fn domain_width(&self) -> u64 {
        (self.domain.1 - self.domain.0 + 1) as u64
    }

    fn constrained_range<R: Rng + ?Sized>(
        &self,
        pareto: &Pareto,
        width_dist: &Normal,
        rng: &mut R,
    ) -> Range {
        let w = self.domain_width();
        let center = self.domain.0 + pareto.sample_offset(rng, w, self.center_scale) as i64;
        let width = width_dist.sample_clamped(rng, 1.0, w as f64) as i64;
        let lo = (center - width / 2).max(self.domain.0);
        let hi = (center + width / 2).min(self.domain.1);
        Range::new(lo, hi).expect("center within domain keeps lo <= hi")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;
    use psc_model::AttrId;

    #[test]
    fn stream_has_requested_length_and_valid_subscriptions() {
        let wl = ComparisonWorkload::new(10);
        let mut rng = seeded_rng(1);
        let schema = wl.schema();
        let subs = wl.stream(500, &mut rng);
        assert_eq!(subs.len(), 500);
        for s in &subs {
            assert_eq!(s.arity(), 10);
            for (id, attr) in schema.iter() {
                assert!(attr.domain().contains_range(s.range(id)));
            }
        }
    }

    #[test]
    fn popular_attributes_are_constrained_more_often() {
        let wl = ComparisonWorkload::new(10);
        let mut rng = seeded_rng(2);
        let schema = wl.schema();
        let mut constrained_counts = [0usize; 10];
        for _ in 0..2_000 {
            let s = wl.subscription(&schema, &mut rng);
            for (j, r) in s.ranges().iter().enumerate() {
                if r != schema.domain(AttrId(j)) {
                    constrained_counts[j] += 1;
                }
            }
        }
        // Zipf(2.0): attribute 0 much more popular than attribute 9.
        assert!(constrained_counts[0] > 4 * constrained_counts[9].max(1));
        // Every subscription constrains at least `constrained.0` attributes.
        assert!(constrained_counts.iter().sum::<usize>() >= 2_000 * wl.constrained.0);
    }

    #[test]
    fn centers_cluster_near_domain_start() {
        let wl = ComparisonWorkload::new(6);
        let mut rng = seeded_rng(3);
        let schema = wl.schema();
        let mut starts = Vec::new();
        for _ in 0..1_000 {
            let s = wl.subscription(&schema, &mut rng);
            for (j, r) in s.ranges().iter().enumerate() {
                if r != schema.domain(AttrId(j)) {
                    starts.push(r.lo() + (r.count() as i64) / 2);
                }
            }
        }
        let below_quarter = starts
            .iter()
            .filter(|&&c| c < wl.domain.0 + (wl.domain_width() as i64) / 4)
            .count();
        // Pareto concentration: well over half of the centers in the first
        // quarter of the domain.
        assert!(
            below_quarter * 2 > starts.len(),
            "{below_quarter}/{}",
            starts.len()
        );
    }

    #[test]
    fn number_of_constrained_attributes_is_bounded() {
        let wl = ComparisonWorkload::new(20);
        let mut rng = seeded_rng(4);
        let schema = wl.schema();
        for _ in 0..200 {
            let s = wl.subscription(&schema, &mut rng);
            let constrained = s
                .ranges()
                .iter()
                .enumerate()
                .filter(|(j, r)| *r != schema.domain(AttrId(*j)))
                .count();
            assert!(constrained >= wl.constrained.0 && constrained <= wl.constrained.1);
        }
    }

    #[test]
    fn streams_are_reproducible() {
        let wl = ComparisonWorkload::new(8);
        let a = wl.stream(50, &mut seeded_rng(77));
        let b = wl.stream(50, &mut seeded_rng(77));
        assert_eq!(a, b);
    }

    #[test]
    fn coverage_happens_in_the_stream() {
        // The whole point of the comparison scenario: a realistic stream must
        // contain pairwise-covered subscriptions.
        let wl = ComparisonWorkload::new(10);
        let mut rng = seeded_rng(5);
        let subs = wl.stream(300, &mut rng);
        let mut covered = 0;
        for i in 1..subs.len() {
            if subs[..i].iter().any(|prev| prev.covers(&subs[i])) {
                covered += 1;
            }
        }
        assert!(covered > 10, "only {covered} covered out of 300");
    }
}
