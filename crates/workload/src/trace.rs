//! Event traces with subscription churn.
//!
//! The paper's motivating scenarios (Section 3) stress *highly changeable*
//! subscriptions: bike-rental preferences that activate at noon and die
//! after a rental; Grid services whose capability announcements change with
//! every allocation; mobile subscribers whose location constraints move.
//! This module produces subscribe/unsubscribe/publish event sequences with a
//! configurable churn profile for driving the broker simulator and the
//! covering store under realistic dynamics.

use crate::comparison::ComparisonWorkload;
use psc_model::{Publication, Subscription, SubscriptionId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A subscriber registers a new subscription.
    Subscribe(SubscriptionId, Subscription),
    /// A previously registered subscription is cancelled.
    Unsubscribe(SubscriptionId),
    /// A publisher emits a publication.
    Publish(Publication),
}

impl Event {
    /// Short tag for summaries.
    pub fn kind(&self) -> EventKind {
        match self {
            Event::Subscribe(..) => EventKind::Subscribe,
            Event::Unsubscribe(..) => EventKind::Unsubscribe,
            Event::Publish(..) => EventKind::Publish,
        }
    }
}

/// The three event kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventKind {
    /// New subscription.
    Subscribe,
    /// Cancellation.
    Unsubscribe,
    /// Publication.
    Publish,
}

/// Trace generator configuration.
#[derive(Debug, Clone)]
pub struct ChurnTrace {
    /// Workload supplying subscriptions and publications.
    pub workload: ComparisonWorkload,
    /// Relative weight of subscribe events.
    pub subscribe_weight: f64,
    /// Relative weight of unsubscribe events (ignored while nothing is
    /// active).
    pub unsubscribe_weight: f64,
    /// Relative weight of publish events.
    pub publish_weight: f64,
}

impl ChurnTrace {
    /// A moderately churning profile over `m` attributes: publications
    /// dominate (the paper's assumption), with subscription changes a
    /// significant minority — the "mobile/sensor" regime of Section 1.
    pub fn new(m: usize) -> Self {
        ChurnTrace {
            workload: ComparisonWorkload::new(m),
            subscribe_weight: 2.0,
            unsubscribe_weight: 1.0,
            publish_weight: 7.0,
        }
    }

    /// Generates `n` events. Subscription ids are dense and never reused;
    /// unsubscribes always target a currently live id.
    pub fn generate<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<Event> {
        assert!(
            self.subscribe_weight >= 0.0
                && self.unsubscribe_weight >= 0.0
                && self.publish_weight >= 0.0,
            "weights must be non-negative"
        );
        let schema = self.workload.schema();
        let mut events = Vec::with_capacity(n);
        let mut live: Vec<SubscriptionId> = Vec::new();
        let mut next_id = 0u64;
        for _ in 0..n {
            let unsub_w = if live.is_empty() {
                0.0
            } else {
                self.unsubscribe_weight
            };
            let total = self.subscribe_weight + unsub_w + self.publish_weight;
            assert!(total > 0.0, "at least one weight must be positive");
            let roll = rng.gen_range(0.0..total);
            if roll < self.subscribe_weight {
                let id = SubscriptionId(next_id);
                next_id += 1;
                live.push(id);
                events.push(Event::Subscribe(
                    id,
                    self.workload.subscription(&schema, rng),
                ));
            } else if roll < self.subscribe_weight + unsub_w {
                let idx = rng.gen_range(0..live.len());
                let id = live.swap_remove(idx);
                events.push(Event::Unsubscribe(id));
            } else {
                events.push(Event::Publish(self.workload.publication(&schema, rng)));
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;
    use std::collections::HashSet;

    #[test]
    fn events_are_well_formed() {
        let trace = ChurnTrace::new(6);
        let mut rng = seeded_rng(1);
        let events = trace.generate(2_000, &mut rng);
        assert_eq!(events.len(), 2_000);

        let mut live: HashSet<SubscriptionId> = HashSet::new();
        let mut ever: HashSet<SubscriptionId> = HashSet::new();
        for e in &events {
            match e {
                Event::Subscribe(id, sub) => {
                    assert!(ever.insert(*id), "id {id} reused");
                    assert!(live.insert(*id));
                    assert_eq!(sub.arity(), 6);
                }
                Event::Unsubscribe(id) => {
                    assert!(live.remove(id), "unsubscribe of dead id {id}");
                }
                Event::Publish(p) => assert_eq!(p.values().len(), 6),
            }
        }
    }

    #[test]
    fn mix_roughly_matches_weights() {
        let trace = ChurnTrace::new(4);
        let mut rng = seeded_rng(2);
        let events = trace.generate(10_000, &mut rng);
        let pubs = events
            .iter()
            .filter(|e| e.kind() == EventKind::Publish)
            .count();
        let subs = events
            .iter()
            .filter(|e| e.kind() == EventKind::Subscribe)
            .count();
        // Weights 2/1/7: publish ≈ 70%, subscribe ≈ 20%.
        assert!((pubs as f64 / 10_000.0 - 0.7).abs() < 0.05, "pubs = {pubs}");
        assert!((subs as f64 / 10_000.0 - 0.2).abs() < 0.05, "subs = {subs}");
    }

    #[test]
    fn no_unsubscribe_weight_means_monotone_growth() {
        let mut trace = ChurnTrace::new(4);
        trace.unsubscribe_weight = 0.0;
        let mut rng = seeded_rng(3);
        let events = trace.generate(500, &mut rng);
        assert!(events.iter().all(|e| e.kind() != EventKind::Unsubscribe));
    }

    #[test]
    fn deterministic_per_seed() {
        let trace = ChurnTrace::new(4);
        let a = trace.generate(100, &mut seeded_rng(9));
        let b = trace.generate(100, &mut seeded_rng(9));
        assert_eq!(a, b);
    }
}
