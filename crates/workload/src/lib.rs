//! # psc-workload
//!
//! Subscription-generation scenarios reproducing Section 6 ("Experimental
//! Evaluation") of *"Efficient Probabilistic Subsumption Checking for
//! Content-based Publish/Subscribe Systems"* (Middleware 2006).
//!
//! The paper evaluates on six scenario families:
//!
//! | Paper §6 id | Generator | Ground truth |
//! |---|---|---|
//! | (1.a) pairwise covering | [`PairwiseCoverScenario`] | covered |
//! | (1.b) redundant covering | [`RedundantCoverScenario`] | covered, 80% redundant |
//! | (2.a) no intersection | [`NoIntersectionScenario`] | not covered |
//! | (2.b) non-cover | [`NonCoverScenario`] | not covered (gap on one attribute) |
//! | (2.c) extreme non-cover | [`ExtremeNonCoverScenario`] | not covered (narrow gap, rest fully covered) |
//! | (1-2) comparison | [`ComparisonWorkload`] | unknown (realistic stream) |
//!
//! Every generator takes an explicit RNG so experiments are reproducible;
//! [`seeded_rng`] provides the canonical seeding.
//!
//! Distributions named by the paper (Zipf skew 2.0 for attribute popularity,
//! Pareto skew 1.0 for range centers, Normal for range widths) are
//! implemented in [`dist`] — textbook inverse-CDF / Box–Muller samplers kept
//! in-repo to avoid a dependency outside the allowed set.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod comparison;
pub mod dist;
pub mod instance;
pub mod region;
pub mod scenarios;
pub mod trace;

pub use comparison::ComparisonWorkload;
pub use instance::CoverInstance;
pub use scenarios::{
    ExtremeNonCoverScenario, NoIntersectionScenario, NonCoverScenario, PairwiseCoverScenario,
    RedundantCoverScenario,
};
pub use trace::{ChurnTrace, Event, EventKind};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The canonical deterministic RNG for experiments.
///
/// # Example
/// ```
/// use psc_workload::seeded_rng;
/// use rand::Rng;
/// let mut a = seeded_rng(7);
/// let mut b = seeded_rng(7);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}
