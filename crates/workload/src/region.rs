//! Range-geometry helpers shared by the scenario generators.

use psc_model::Range;
use rand::Rng;

/// Samples a uniformly-placed subrange of `outer` whose width (in points) is
/// drawn uniformly from `[min_width, max_width]` (clamped to `outer`).
///
/// # Panics
/// Panics if `min_width == 0` or `min_width > max_width`.
pub fn random_subrange<R: Rng + ?Sized>(
    rng: &mut R,
    outer: &Range,
    min_width: u64,
    max_width: u64,
) -> Range {
    assert!(min_width >= 1, "subranges must contain at least one point");
    assert!(
        min_width <= max_width,
        "min_width {min_width} > max_width {max_width}"
    );
    let outer_count = outer.count().min(u128::from(u64::MAX)) as u64;
    let min_w = min_width.min(outer_count);
    let max_w = max_width.min(outer_count);
    let width = rng.gen_range(min_w..=max_w);
    let slack = outer_count - width;
    let start = outer.lo() + rng.gen_range(0..=slack) as i64;
    Range::new(start, start + width as i64 - 1).expect("constructed lo <= hi")
}

/// Extends `inner` outward on both sides by independent uniform amounts up to
/// `max_extension`, clamped to stay inside `outer`.
///
/// Used to grow covering pieces past the subscription they cover without
/// escaping the attribute domain.
pub fn extend_outward<R: Rng + ?Sized>(
    rng: &mut R,
    inner: &Range,
    outer: &Range,
    max_extension: u64,
) -> Range {
    let left_room = (inner.lo() - outer.lo()).max(0) as u64;
    let right_room = (outer.hi() - inner.hi()).max(0) as u64;
    let left = rng.gen_range(0..=max_extension.min(left_room)) as i64;
    let right = rng.gen_range(0..=max_extension.min(right_room)) as i64;
    Range::new(inner.lo() - left, inner.hi() + right).expect("extension keeps lo <= hi")
}

/// Splits `range` into `pieces` contiguous slabs with random interior
/// boundaries, then widens each slab by up to `overlap` points on each side
/// (clamped to `range`), so adjacent slabs overlap but the union still equals
/// `range`.
///
/// # Panics
/// Panics if `pieces == 0` or `pieces` exceeds the number of points.
pub fn random_cover_slabs<R: Rng + ?Sized>(
    rng: &mut R,
    range: &Range,
    pieces: usize,
    overlap: u64,
) -> Vec<Range> {
    assert!(pieces >= 1, "need at least one slab");
    let count = range.count().min(u128::from(u64::MAX)) as u64;
    assert!(
        pieces as u64 <= count,
        "cannot split {count} points into {pieces} non-empty slabs"
    );
    // Choose pieces-1 distinct interior boundaries.
    let mut bounds = Vec::with_capacity(pieces + 1);
    bounds.push(range.lo());
    if pieces > 1 {
        let mut cuts = std::collections::BTreeSet::new();
        while cuts.len() < pieces - 1 {
            cuts.insert(rng.gen_range(range.lo() + 1..=range.hi()));
        }
        bounds.extend(cuts);
    }
    bounds.push(range.hi() + 1);

    (0..pieces)
        .map(|i| {
            let lo = bounds[i];
            let hi = bounds[i + 1] - 1;
            let slab = Range::new(lo, hi).expect("cut points are ordered");
            extend_outward(rng, &slab, range, overlap)
        })
        .collect()
}

/// Splits `range` into `pieces` slabs of *roughly equal* width: boundaries
/// sit at the equal-partition points, each perturbed by at most
/// `jitter_frac` of a slab width. The union equals `range` and the minimum
/// slab width stays on the order of `count/pieces` — unlike
/// [`random_cover_slabs`], whose uniform cuts can produce arbitrarily thin
/// slabs.
///
/// The distinction matters for reproducing the paper's extreme non-cover
/// scenario: Algorithm 2's witness estimate takes the *minimum* uncovered
/// strip per attribute, so pathologically thin slabs would inflate the
/// iteration budget `d` far beyond what the paper's Figures 11–12 exhibit.
///
/// # Panics
/// Panics if `pieces == 0`, if `pieces` exceeds the point count, or if
/// `jitter_frac` is not in `[0, 0.5)`.
pub fn jittered_cover_slabs<R: Rng + ?Sized>(
    rng: &mut R,
    range: &Range,
    pieces: usize,
    jitter_frac: f64,
) -> Vec<Range> {
    assert!(pieces >= 1, "need at least one slab");
    assert!(
        (0.0..0.5).contains(&jitter_frac),
        "jitter_frac must be in [0, 0.5), got {jitter_frac}"
    );
    let count = range.count().min(u128::from(u64::MAX)) as u64;
    assert!(
        pieces as u64 <= count,
        "cannot split {count} points into {pieces} non-empty slabs"
    );
    let slab_width = count as f64 / pieces as f64;
    let max_jitter = (slab_width * jitter_frac).floor() as i64;
    let mut bounds = Vec::with_capacity(pieces + 1);
    bounds.push(range.lo());
    for i in 1..pieces {
        let ideal = range.lo() + (i as f64 * slab_width).round() as i64;
        let jitter = if max_jitter > 0 {
            rng.gen_range(-max_jitter..=max_jitter)
        } else {
            0
        };
        bounds.push(ideal + jitter);
    }
    bounds.push(range.hi() + 1);
    // Jitter below half a slab width keeps boundaries ordered in the typical
    // case, but rounding on tiny slabs can collide; enforce strict
    // monotonicity while leaving room for the remaining pieces (sound because
    // pieces <= count).
    for i in 1..pieces {
        let min_b = bounds[i - 1] + 1;
        let max_b = range.hi() + 1 - (pieces - i) as i64;
        bounds[i] = bounds[i].clamp(min_b, max_b);
    }

    (0..pieces)
        .map(|i| Range::new(bounds[i], bounds[i + 1] - 1).expect("ordered bounds"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;

    #[test]
    fn subrange_stays_inside_and_respects_width() {
        let outer = Range::new(100, 299).unwrap();
        let mut rng = seeded_rng(1);
        for _ in 0..500 {
            let r = random_subrange(&mut rng, &outer, 5, 50);
            assert!(outer.contains_range(&r));
            assert!((5..=50).contains(&(r.count() as u64)));
        }
    }

    #[test]
    fn subrange_clamps_widths_to_outer() {
        let outer = Range::new(0, 9).unwrap(); // 10 points
        let mut rng = seeded_rng(2);
        for _ in 0..100 {
            let r = random_subrange(&mut rng, &outer, 5, 1_000);
            assert!(outer.contains_range(&r));
            assert!(r.count() >= 5);
        }
    }

    #[test]
    fn extend_outward_contains_inner_within_outer() {
        let outer = Range::new(0, 999).unwrap();
        let inner = Range::new(400, 500).unwrap();
        let mut rng = seeded_rng(3);
        for _ in 0..500 {
            let r = extend_outward(&mut rng, &inner, &outer, 600);
            assert!(r.contains_range(&inner));
            assert!(outer.contains_range(&r));
        }
    }

    #[test]
    fn slabs_cover_exactly_with_overlap() {
        let range = Range::new(0, 999).unwrap();
        let mut rng = seeded_rng(4);
        for pieces in [1usize, 2, 5, 20] {
            let slabs = random_cover_slabs(&mut rng, &range, pieces, 10);
            assert_eq!(slabs.len(), pieces);
            // The union covers every point of `range`.
            for v in range.lo()..=range.hi() {
                assert!(slabs.iter().any(|s| s.contains(v)), "uncovered {v}");
            }
            // No slab escapes `range`.
            for s in &slabs {
                assert!(range.contains_range(s));
            }
        }
    }

    #[test]
    fn slabs_without_overlap_partition() {
        let range = Range::new(0, 99).unwrap();
        let mut rng = seeded_rng(5);
        let slabs = random_cover_slabs(&mut rng, &range, 4, 0);
        let total: u128 = slabs.iter().map(|s| s.count()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn too_many_slabs_panics() {
        let range = Range::new(0, 2).unwrap();
        let mut rng = seeded_rng(6);
        let _ = random_cover_slabs(&mut rng, &range, 10, 0);
    }

    #[test]
    fn jittered_slabs_cover_and_stay_near_equal() {
        let range = Range::new(0, 9_999).unwrap();
        let mut rng = seeded_rng(7);
        for pieces in [1usize, 2, 10, 25] {
            let slabs = jittered_cover_slabs(&mut rng, &range, pieces, 0.25);
            assert_eq!(slabs.len(), pieces);
            // Exact partition: total points = range points, contiguous.
            let total: u128 = slabs.iter().map(|s| s.count()).sum();
            assert_eq!(total, range.count());
            for w in slabs.windows(2) {
                assert_eq!(w[1].lo(), w[0].hi() + 1);
            }
            // Every slab within 50% of the ideal width.
            let ideal = 10_000.0 / pieces as f64;
            for s in &slabs {
                let w = s.count() as f64;
                assert!(w > ideal * 0.5 && w < ideal * 1.5, "w={w} ideal={ideal}");
            }
        }
    }

    #[test]
    fn jittered_slabs_degenerate_tiny_range() {
        // pieces == count: every slab is a single point.
        let range = Range::new(5, 9).unwrap();
        let mut rng = seeded_rng(8);
        let slabs = jittered_cover_slabs(&mut rng, &range, 5, 0.49);
        assert_eq!(slabs.len(), 5);
        for (i, s) in slabs.iter().enumerate() {
            assert_eq!(s.count(), 1, "slab {i} = {s}");
        }
    }

    #[test]
    #[should_panic(expected = "jitter_frac")]
    fn jittered_slabs_rejects_half_jitter() {
        let range = Range::new(0, 99).unwrap();
        let mut rng = seeded_rng(9);
        let _ = jittered_cover_slabs(&mut rng, &range, 4, 0.5);
    }
}
