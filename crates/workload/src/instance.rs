//! The common output type of scenario generators.

use psc_model::{Schema, Subscription};

/// One generated subsumption-problem instance: a tested subscription `s`, an
/// existing set `S`, and scenario metadata.
#[derive(Debug, Clone)]
pub struct CoverInstance {
    /// The new subscription whose coverage is tested.
    pub s: Subscription,
    /// The existing subscription set `S`.
    pub set: Vec<Subscription>,
    /// Ground truth, when the construction guarantees it (`None` for
    /// realistic streams where the truth must be computed).
    pub ground_truth: Option<bool>,
    /// Indices into `set` of subscriptions that are *redundant* for the
    /// coverage question by construction — the denominators of the paper's
    /// Figure 6/8 "redundant subscriptions reduction" metric.
    pub redundant_indices: Vec<usize>,
}

impl CoverInstance {
    /// The schema shared by the instance.
    pub fn schema(&self) -> &Schema {
        self.s.schema()
    }

    /// `k`: size of the existing set.
    pub fn k(&self) -> usize {
        self.set.len()
    }

    /// `m`: number of attributes.
    pub fn m(&self) -> usize {
        self.s.arity()
    }

    /// Sanity-checks structural invariants shared by all scenarios: every
    /// subscription lives in the same schema, and redundant indices are in
    /// bounds and unique. Debug/test helper.
    pub fn validate(&self) -> Result<(), String> {
        for (i, si) in self.set.iter().enumerate() {
            if si.arity() != self.s.arity() {
                return Err(format!(
                    "set[{i}] arity {} != s arity {}",
                    si.arity(),
                    self.s.arity()
                ));
            }
        }
        let mut seen = std::collections::HashSet::new();
        for &r in &self.redundant_indices {
            if r >= self.set.len() {
                return Err(format!("redundant index {r} out of bounds"));
            }
            if !seen.insert(r) {
                return Err(format!("redundant index {r} duplicated"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psc_model::Schema;

    #[test]
    fn validate_catches_bad_indices() {
        let schema = Schema::uniform(2, 0, 9);
        let s = Subscription::whole_space(&schema);
        let inst = CoverInstance {
            s: s.clone(),
            set: vec![s.clone()],
            ground_truth: Some(true),
            redundant_indices: vec![3],
        };
        assert!(inst.validate().is_err());
        let inst = CoverInstance {
            s: s.clone(),
            set: vec![s.clone()],
            ground_truth: Some(true),
            redundant_indices: vec![0, 0],
        };
        assert!(inst.validate().is_err());
        let inst = CoverInstance {
            s,
            set: vec![],
            ground_truth: None,
            redundant_indices: vec![],
        };
        assert!(inst.validate().is_ok());
    }
}
