//! The paper's five constructed scenario families (Section 6).
//!
//! All generators share the same skeleton: a uniform integer schema, a tested
//! subscription `s` occupying a moderate fraction of the space, and an
//! existing set `S` engineered so that the scenario's cover status holds *by
//! construction* — which is what lets the experiments count false decisions
//! without invoking the exponential exact checker on every run.

use crate::instance::CoverInstance;
use crate::region::{extend_outward, jittered_cover_slabs, random_subrange};
use psc_model::{AttrId, Range, Schema, Subscription};
use rand::Rng;

/// Default attribute domain used across the evaluation.
pub const DEFAULT_DOMAIN: (i64, i64) = (0, 9_999);

fn uniform_schema(m: usize, domain: (i64, i64)) -> Schema {
    Schema::uniform(m, domain.0, domain.1)
}

/// Draws the tested subscription `s`: on each attribute, a subrange covering
/// `width_frac` of the domain (as a `(min, max)` fraction pair), kept away
/// from the domain edges by `margin_frac` so scenarios can place geometry on
/// either side of `s`.
fn draw_s<R: Rng + ?Sized>(
    rng: &mut R,
    schema: &Schema,
    width_frac: (f64, f64),
    margin_frac: f64,
) -> Subscription {
    let ranges = schema
        .iter()
        .map(|(_, attr)| {
            let dom = attr.domain();
            let w = dom.count() as f64;
            let margin = (w * margin_frac).floor() as i64;
            let inner = Range::new(dom.lo() + margin, dom.hi() - margin)
                .expect("margin below half the domain");
            let min_w = ((w * width_frac.0) as u64).max(4);
            let max_w = ((w * width_frac.1) as u64).max(min_w);
            random_subrange(rng, &inner, min_w, max_w)
        })
        .collect();
    Subscription::from_ranges(schema, ranges).expect("ranges drawn inside domains")
}

/// Scenario (1.a): `s` is entirely covered by at least one single member of
/// the set. The conflict table decides it in `O(m·k)` via Corollary 1.
#[derive(Debug, Clone)]
pub struct PairwiseCoverScenario {
    /// Number of attributes.
    pub m: usize,
    /// Number of existing subscriptions.
    pub k: usize,
    /// Attribute domain (inclusive).
    pub domain: (i64, i64),
}

impl PairwiseCoverScenario {
    /// Creates the scenario with the default domain.
    pub fn new(m: usize, k: usize) -> Self {
        PairwiseCoverScenario {
            m,
            k,
            domain: DEFAULT_DOMAIN,
        }
    }

    /// Generates one instance. The covering subscription is placed at a
    /// random index; all other members intersect `s` without covering it.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> CoverInstance {
        assert!(
            self.k >= 1,
            "pairwise cover needs at least one subscription"
        );
        let schema = uniform_schema(self.m, self.domain);
        let s = draw_s(rng, &schema, (0.15, 0.40), 0.1);
        let cover_at = rng.gen_range(0..self.k);
        let max_ext = (self.domain.1 - self.domain.0) as u64 / 10;

        let mut set = Vec::with_capacity(self.k);
        for i in 0..self.k {
            if i == cover_at {
                // s extended outward on every attribute: a strict cover.
                let ranges = schema
                    .iter()
                    .map(|(id, attr)| extend_outward(rng, s.range(id), attr.domain(), max_ext))
                    .collect();
                set.push(Subscription::from_ranges(&schema, ranges).expect("within domains"));
            } else {
                set.push(partial_overlap(rng, &schema, &s, max_ext));
            }
        }
        let redundant_indices = (0..self.k).filter(|&i| i != cover_at).collect();
        CoverInstance {
            s,
            set,
            ground_truth: Some(true),
            redundant_indices,
        }
    }
}

/// A subscription intersecting `s` but guaranteed not to cover it: its range
/// on one random attribute is a strict subrange of `s`'s (shrunk on at least
/// one side); other attributes are subranges of `s` extended outward.
fn partial_overlap<R: Rng + ?Sized>(
    rng: &mut R,
    schema: &Schema,
    s: &Subscription,
    max_ext: u64,
) -> Subscription {
    let m = schema.len();
    let pinch = AttrId(rng.gen_range(0..m));
    let ranges = schema
        .iter()
        .map(|(id, attr)| {
            let base = s.range(id);
            if id == pinch {
                // Strict subrange: drop at least one point from one side.
                strict_subrange(rng, base)
            } else {
                let sub = random_subrange(rng, base, (base.count() as u64 / 2).max(1), {
                    base.count() as u64
                });
                extend_outward(rng, &sub, attr.domain(), max_ext)
            }
        })
        .collect();
    Subscription::from_ranges(schema, ranges).expect("within domains")
}

/// A subrange of `base` that *touches* one side: `[base.lo, b]` when
/// `touch_low`, else `[a, base.hi]`, with the free endpoint uniform over the
/// strict interior. For multi-point `base` the result is a strict subrange;
/// a single-point `base` is returned unchanged (nothing to shrink).
fn side_touch_range<R: Rng + ?Sized>(rng: &mut R, base: &Range, touch_low: bool) -> Range {
    if base.count() < 2 {
        return *base;
    }
    if touch_low {
        let b = rng.gen_range(base.lo()..base.hi());
        Range::new(base.lo(), b).expect("b < hi keeps order")
    } else {
        let a = rng.gen_range(base.lo() + 1..=base.hi());
        Range::new(a, base.hi()).expect("a > lo keeps order")
    }
}

/// A member that only partially covers `s` in the style the paper's MCS
/// evaluation presumes (compare Figure 4's `s3`): it covers `s` *fully* on
/// every attribute except one "pinch" attribute, where it covers either a
/// side-touching slice (one uncovered strip) or, with probability
/// `strict_prob`, a strictly interior slice (two uncovered strips).
///
/// Side-touching slices use a side fixed by the attribute's parity, so
/// same-attribute slices leave strips on the same side of `s` and therefore
/// never conflict with each other — exactly the geometry that makes such
/// members removable by MCS (their uncovered strips are conflict-free unless
/// an interior slice on the same attribute opposes them).
fn partial_cover_member<R: Rng + ?Sized>(
    rng: &mut R,
    schema: &Schema,
    s: &Subscription,
    pinch: AttrId,
    strict_prob: f64,
    max_ext: u64,
) -> Subscription {
    let ranges = schema
        .iter()
        .map(|(id, attr)| {
            if id == pinch {
                let base = s.range(id);
                if rng.gen_bool(strict_prob) && base.count() >= 3 {
                    // Strictly interior slice: uncovered strips on both sides.
                    let a = rng.gen_range(base.lo() + 1..base.hi());
                    let b = rng.gen_range(a..base.hi());
                    Range::new(a, b).expect("interior slice ordered")
                } else {
                    side_touch_range(rng, base, id.0 % 2 == 0)
                }
            } else {
                extend_outward(rng, s.range(id), attr.domain(), max_ext)
            }
        })
        .collect();
    Subscription::from_ranges(schema, ranges).expect("within domains")
}

/// A strict subrange of `base` missing at least its lowest or highest point.
fn strict_subrange<R: Rng + ?Sized>(rng: &mut R, base: &Range) -> Range {
    if base.count() == 1 {
        // Cannot shrink a single point; callers avoid this by drawing s with
        // width >= 4, but stay safe.
        return *base;
    }
    let drop_low = rng.gen_bool(0.5);
    let width = base.count() as u64 - 1;
    let inner = if drop_low {
        Range::new(base.lo() + 1, base.hi()).expect("width >= 2")
    } else {
        Range::new(base.lo(), base.hi() - 1).expect("width >= 2")
    };
    random_subrange(rng, &inner, (width / 2).max(1), width)
}

/// Scenario (1.b): `s` is covered by the **union** of the first ~20% of the
/// set (no single member covers it); the remaining ~80% only partially
/// overlap `s` and are redundant by construction.
///
/// This is the adversarial setting for pairwise algorithms (they can remove
/// nothing) and the headline setting for MCS + RSPC (Figures 6 and 7).
#[derive(Debug, Clone)]
pub struct RedundantCoverScenario {
    /// Number of attributes.
    pub m: usize,
    /// Number of existing subscriptions.
    pub k: usize,
    /// Attribute domain (inclusive).
    pub domain: (i64, i64),
    /// Fraction of the set forming the covering group (paper: 0.2).
    pub cover_fraction: f64,
}

impl RedundantCoverScenario {
    /// Creates the scenario with the paper's 20% covering group.
    pub fn new(m: usize, k: usize) -> Self {
        RedundantCoverScenario {
            m,
            k,
            domain: DEFAULT_DOMAIN,
            cover_fraction: 0.2,
        }
    }

    /// Number of subscriptions in the covering group.
    pub fn cover_count(&self) -> usize {
        ((self.k as f64 * self.cover_fraction).ceil() as usize).clamp(2, self.k)
    }

    /// Generates one instance.
    ///
    /// The covering group tiles `s` along attribute 0 with jittered
    /// equal-width slabs (full coverage, no single-member cover); every slab
    /// covers `s` fully on the remaining attributes with random outward
    /// extensions. Redundant members partially cover `s` on one pinch
    /// attribute (side-touching or strictly interior slices): they overlap `s` and each
    /// other on all attributes, none covers `s` alone, and MCS can remove
    /// most of them.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> CoverInstance {
        assert!(self.k >= 2, "redundant covering needs k >= 2");
        let schema = uniform_schema(self.m, self.domain);
        let s = draw_s(rng, &schema, (0.20, 0.50), 0.1);
        let n_cover = self.cover_count();
        let max_ext = (self.domain.1 - self.domain.0) as u64 / 10;

        let slabs = jittered_cover_slabs(rng, s.range(AttrId(0)), n_cover, 0.25);
        let mut set = Vec::with_capacity(self.k);
        for slab in slabs {
            let ranges = schema
                .iter()
                .map(|(id, attr)| {
                    if id == AttrId(0) {
                        slab
                    } else {
                        extend_outward(rng, s.range(id), attr.domain(), max_ext)
                    }
                })
                .collect();
            set.push(Subscription::from_ranges(&schema, ranges).expect("within domains"));
        }
        for _ in n_cover..self.k {
            let pinch = AttrId(rng.gen_range(0..self.m));
            set.push(partial_cover_member(rng, &schema, &s, pinch, 0.05, max_ext));
        }
        let redundant_indices = (n_cover..self.k).collect();
        CoverInstance {
            s,
            set,
            ground_truth: Some(true),
            redundant_indices,
        }
    }
}

/// Scenario (2.a): no member of the set intersects `s` at all. MCS empties
/// the set in one pass (every row is conflict-free), yielding a fast
/// deterministic NO.
#[derive(Debug, Clone)]
pub struct NoIntersectionScenario {
    /// Number of attributes.
    pub m: usize,
    /// Number of existing subscriptions.
    pub k: usize,
    /// Attribute domain (inclusive).
    pub domain: (i64, i64),
}

impl NoIntersectionScenario {
    /// Creates the scenario with the default domain.
    pub fn new(m: usize, k: usize) -> Self {
        NoIntersectionScenario {
            m,
            k,
            domain: DEFAULT_DOMAIN,
        }
    }

    /// Generates one instance: each member is pushed entirely off `s` on one
    /// random attribute (below or above), free elsewhere.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> CoverInstance {
        let schema = uniform_schema(self.m, self.domain);
        // Wide margins guarantee room on both sides of s on every attribute.
        let s = draw_s(rng, &schema, (0.15, 0.35), 0.15);
        let mut set = Vec::with_capacity(self.k);
        for _ in 0..self.k {
            let off_attr = AttrId(rng.gen_range(0..self.m));
            let ranges = schema
                .iter()
                .map(|(id, attr)| {
                    let dom = attr.domain();
                    if id == off_attr {
                        let sr = s.range(id);
                        let below = Range::new(dom.lo(), sr.lo() - 1)
                            .expect("margin guarantees room below");
                        let above = Range::new(sr.hi() + 1, dom.hi())
                            .expect("margin guarantees room above");
                        let side = if rng.gen_bool(0.5) { below } else { above };
                        random_subrange(rng, &side, 1, side.count() as u64)
                    } else {
                        random_subrange(rng, dom, dom.count() as u64 / 10, {
                            dom.count() as u64 / 2
                        })
                    }
                })
                .collect();
            set.push(Subscription::from_ranges(&schema, ranges).expect("within domains"));
        }
        let redundant_indices = (0..self.k).collect();
        CoverInstance {
            s,
            set,
            ground_truth: Some(false),
            redundant_indices,
        }
    }
}

/// Scenario (2.b): the set overlaps `s` heavily on all attributes but leaves
/// a small **gap** on attribute 0 uncovered, so `s` is not covered and the
/// whole set is redundant (Figures 8–10).
#[derive(Debug, Clone)]
pub struct NonCoverScenario {
    /// Number of attributes.
    pub m: usize,
    /// Number of existing subscriptions.
    pub k: usize,
    /// Attribute domain (inclusive).
    pub domain: (i64, i64),
    /// Gap width as a fraction of `s`'s attribute-0 width (paper: small).
    pub gap_fraction: f64,
    /// Probability that a member sits strictly interior to its gap side on
    /// attribute 0 (leaving strips on both x0 directions). Interior members
    /// are the ones MCS cannot always remove; 0 makes the reduction exactly
    /// 1.0.
    pub interior_prob: f64,
}

impl NonCoverScenario {
    /// Creates the scenario with a 5% gap.
    pub fn new(m: usize, k: usize) -> Self {
        NonCoverScenario {
            m,
            k,
            domain: DEFAULT_DOMAIN,
            gap_fraction: 0.05,
            interior_prob: 0.1,
        }
    }

    /// Generates one instance. Every member's attribute-0 range avoids the
    /// gap entirely (left or right side). Most members reach outward from
    /// the gap's side to `s`'s boundary on attribute 0 and cover `s` fully
    /// on the other attributes — so their uncovered strips face the gap from
    /// both sides, overlap each other, and leave almost every row
    /// MCS-removable (the paper: "most of the subscriptions are removed
    /// quickly due to the non covering relationship"). A minority are
    /// strictly interior or leave partial side slices on other attributes,
    /// which is what keeps the reduction below 100% for large `k`.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> CoverInstance {
        let schema = uniform_schema(self.m, self.domain);
        let s = draw_s(rng, &schema, (0.20, 0.50), 0.1);
        let (gap, left, right) = carve_gap(rng, s.range(AttrId(0)), self.gap_fraction);
        let max_ext = (self.domain.1 - self.domain.0) as u64 / 20;

        let mut set = Vec::with_capacity(self.k);
        for _ in 0..self.k {
            let go_left = rng.gen_bool(left.count() as f64 / (left.count() + right.count()) as f64);
            let side = if go_left { left } else { right };
            let ranges = schema
                .iter()
                .map(|(id, attr)| {
                    if id == AttrId(0) {
                        if rng.gen_bool(self.interior_prob) && side.count() >= 3 {
                            // Strictly interior to the side: strips on both
                            // x0 directions.
                            let a = rng.gen_range(side.lo() + 1..side.hi());
                            let b = rng.gen_range(a..side.hi());
                            Range::new(a, b).expect("ordered")
                        } else {
                            // Span from s's outer boundary toward the gap:
                            // the only uncovered strip faces the gap.
                            side_touch_range(rng, &side, go_left)
                        }
                    } else if rng.gen_bool(0.85) {
                        extend_outward(rng, s.range(id), attr.domain(), max_ext)
                    } else {
                        side_touch_range(rng, s.range(id), id.0 % 2 == 0)
                    }
                })
                .collect();
            set.push(Subscription::from_ranges(&schema, ranges).expect("within domains"));
        }
        let redundant_indices = (0..self.k).collect();
        let inst = CoverInstance {
            s,
            set,
            ground_truth: Some(false),
            redundant_indices,
        };
        debug_assert!(gap_is_uncovered(&inst, &gap));
        inst
    }
}

/// Scenario (2.c): the set covers `s` entirely **except** a narrow slice of
/// width `gap_fraction · |s.x0|` on attribute 0; every member covers `s`
/// fully on all other attributes. The only witness region is the slice, so
/// the true witness probability equals the gap fraction — the knob Figures
/// 11 and 12 sweep.
#[derive(Debug, Clone)]
pub struct ExtremeNonCoverScenario {
    /// Number of attributes (paper: 5).
    pub m: usize,
    /// Number of existing subscriptions (paper: 50).
    pub k: usize,
    /// Attribute domain (inclusive).
    pub domain: (i64, i64),
    /// Gap width as a fraction of `s`'s attribute-0 width (paper sweeps
    /// 0.005..=0.045).
    pub gap_fraction: f64,
}

impl ExtremeNonCoverScenario {
    /// Creates the paper's configuration: `m = 5`, `k = 50`.
    pub fn new(gap_fraction: f64) -> Self {
        ExtremeNonCoverScenario {
            m: 5,
            k: 50,
            domain: DEFAULT_DOMAIN,
            gap_fraction,
        }
    }

    /// Generates one instance: jittered equal slabs tile the left and right
    /// sides of the gap on attribute 0; all members cover `s` fully (with
    /// outward extension) on the other attributes.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> CoverInstance {
        assert!(self.k >= 2, "extreme non-cover needs k >= 2");
        let schema = uniform_schema(self.m, self.domain);
        let s = draw_s(rng, &schema, (0.30, 0.60), 0.1);
        let (gap, left, right) = carve_gap(rng, s.range(AttrId(0)), self.gap_fraction);
        let max_ext = (self.domain.1 - self.domain.0) as u64 / 10;

        // Split k between the sides proportionally to their widths, at least
        // one each, capped by the number of points available.
        let lw = left.count() as f64;
        let rw = right.count() as f64;
        let mut k_left = ((self.k as f64 * lw / (lw + rw)).round() as usize)
            .clamp(1, self.k - 1)
            .min(left.count() as usize);
        let k_right = (self.k - k_left).min(right.count() as usize);
        k_left = self.k - k_right;

        let mut set = Vec::with_capacity(self.k);
        let push_side = |rng: &mut R, side: &Range, pieces: usize, set: &mut Vec<Subscription>| {
            for slab in jittered_cover_slabs(rng, side, pieces, 0.25) {
                let ranges = schema
                    .iter()
                    .map(|(id, attr)| {
                        if id == AttrId(0) {
                            slab
                        } else {
                            extend_outward(rng, s.range(id), attr.domain(), max_ext)
                        }
                    })
                    .collect();
                set.push(Subscription::from_ranges(&schema, ranges).expect("within domains"));
            }
        };
        push_side(rng, &left, k_left, &mut set);
        push_side(rng, &right, k_right, &mut set);

        let redundant_indices = (0..set.len()).collect();
        let inst = CoverInstance {
            s,
            set,
            ground_truth: Some(false),
            redundant_indices,
        };
        debug_assert!(gap_is_uncovered(&inst, &gap));
        inst
    }

    /// The exact number of gap points for an instance with `s_width` points
    /// on attribute 0 (at least one).
    pub fn gap_points(&self, s_width: u128) -> u64 {
        ((s_width as f64 * self.gap_fraction).round() as u64).max(1)
    }
}

/// Carves a gap of `gap_fraction` of `range`'s width, strictly inside it
/// (both sides non-empty). Returns `(gap, left_side, right_side)`.
fn carve_gap<R: Rng + ?Sized>(
    rng: &mut R,
    range: &Range,
    gap_fraction: f64,
) -> (Range, Range, Range) {
    let count = range.count() as u64;
    assert!(
        count >= 3,
        "range too small to carve a gap with non-empty sides"
    );
    let gap_w = ((count as f64 * gap_fraction).round() as u64).clamp(1, count - 2);
    // Keep at least one point on each side.
    let start = rng.gen_range(range.lo() + 1..=range.hi() - gap_w as i64);
    let gap = Range::new(start, start + gap_w as i64 - 1).expect("gap fits");
    let left = Range::new(range.lo(), gap.lo() - 1).expect("left non-empty");
    let right = Range::new(gap.hi() + 1, range.hi()).expect("right non-empty");
    (gap, left, right)
}

/// Test/debug helper: no member of the set intersects the gap on attribute 0
/// (which, with every member intersecting `s` elsewhere, certifies
/// non-coverage).
fn gap_is_uncovered(inst: &CoverInstance, gap: &Range) -> bool {
    inst.set
        .iter()
        .all(|si| !si.range(AttrId(0)).intersects(gap))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;
    use psc_core::{ExactChecker, PairwiseChecker};

    #[test]
    fn pairwise_scenario_has_single_cover() {
        let sc = PairwiseCoverScenario::new(4, 12);
        let mut rng = seeded_rng(100);
        for _ in 0..20 {
            let inst = sc.generate(&mut rng);
            inst.validate().unwrap();
            assert_eq!(inst.k(), 12);
            assert!(PairwiseChecker.is_covered(&inst.s, &inst.set));
            // Exactly the members other than the cover are marked redundant.
            assert_eq!(inst.redundant_indices.len(), 11);
        }
    }

    #[test]
    fn redundant_scenario_group_covers_without_pairwise() {
        let sc = RedundantCoverScenario::new(3, 20);
        let mut rng = seeded_rng(200);
        for _ in 0..10 {
            let inst = sc.generate(&mut rng);
            inst.validate().unwrap();
            // No single member covers s...
            assert!(!PairwiseChecker.is_covered(&inst.s, &inst.set));
            // ...but the union does (exact check, m = 3 is cheap).
            assert!(ExactChecker::default()
                .is_covered(&inst.s, &inst.set)
                .unwrap());
            // And already the covering group alone suffices.
            let n_cover = sc.cover_count();
            assert!(ExactChecker::default()
                .is_covered(&inst.s, &inst.set[..n_cover])
                .unwrap());
            assert_eq!(inst.redundant_indices, (n_cover..20).collect::<Vec<_>>());
        }
    }

    #[test]
    fn no_intersection_scenario_is_disjoint() {
        let sc = NoIntersectionScenario::new(5, 30);
        let mut rng = seeded_rng(300);
        for _ in 0..10 {
            let inst = sc.generate(&mut rng);
            inst.validate().unwrap();
            for si in &inst.set {
                assert!(!si.intersects(&inst.s));
            }
        }
    }

    #[test]
    fn non_cover_scenario_leaves_gap() {
        let sc = NonCoverScenario::new(3, 25);
        let mut rng = seeded_rng(400);
        for _ in 0..10 {
            let inst = sc.generate(&mut rng);
            inst.validate().unwrap();
            assert!(!ExactChecker::default()
                .is_covered(&inst.s, &inst.set)
                .unwrap());
            // Members do intersect s (unlike scenario 2.a).
            let intersecting = inst.set.iter().filter(|si| si.intersects(&inst.s)).count();
            assert!(intersecting > inst.set.len() / 2);
        }
    }

    #[test]
    fn extreme_scenario_gap_is_the_only_witness_region() {
        let sc = ExtremeNonCoverScenario::new(0.02);
        let mut rng = seeded_rng(500);
        for _ in 0..5 {
            let inst = sc.generate(&mut rng);
            inst.validate().unwrap();
            assert_eq!(inst.k(), 50);
            assert_eq!(inst.m(), 5);
            // Not covered...
            let out = ExactChecker::default().check(&inst.s, &inst.set).unwrap();
            match out {
                psc_core::exact::ExactOutcome::NotCovered(w) => {
                    // ...and any witness lies inside s on every attribute
                    // other than 0 (full coverage there).
                    assert!(inst.s.contains_point(w.point()));
                }
                _ => panic!("extreme scenario must not be covered"),
            }
            // Every member covers s fully on attributes 1..m.
            for si in &inst.set {
                for j in 1..inst.m() {
                    assert!(si.range(AttrId(j)).contains_range(inst.s.range(AttrId(j))));
                }
            }
        }
    }

    #[test]
    fn extreme_scenario_true_witness_probability_tracks_gap() {
        // Patch the gap region: covering it makes the instance covered.
        let sc = ExtremeNonCoverScenario::new(0.03);
        let mut rng = seeded_rng(600);
        let inst = sc.generate(&mut rng);
        // Find the gap by scanning attribute 0 of s for uncovered values.
        let s0 = inst.s.range(AttrId(0));
        let uncovered: Vec<i64> = (s0.lo()..=s0.hi())
            .filter(|&v| !inst.set.iter().any(|si| si.range(AttrId(0)).contains(v)))
            .collect();
        let frac = uncovered.len() as f64 / s0.count() as f64;
        assert!((frac - 0.03).abs() < 0.01, "gap fraction came out {frac}");
        // Gap is contiguous.
        for w in uncovered.windows(2) {
            assert_eq!(w[1], w[0] + 1);
        }
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let sc = NonCoverScenario::new(4, 15);
        let a = sc.generate(&mut seeded_rng(9));
        let b = sc.generate(&mut seeded_rng(9));
        assert_eq!(a.s, b.s);
        assert_eq!(a.set, b.set);
    }

    #[test]
    fn carve_gap_respects_bounds() {
        let mut rng = seeded_rng(10);
        for _ in 0..200 {
            let r = Range::new(0, 99).unwrap();
            let (gap, left, right) = carve_gap(&mut rng, &r, 0.05);
            assert!(r.contains_range(&gap));
            assert_eq!(left.hi() + 1, gap.lo());
            assert_eq!(gap.hi() + 1, right.lo());
            assert!(left.count() >= 1 && right.count() >= 1);
            assert_eq!(gap.count(), 5);
        }
    }
}
