//! Client/server demo of the sharded pub/sub service — including a
//! restart that proves subscriptions survive on disk.
//!
//! Starts a `ServiceServer` with a temporary `data_dir`, drives it from a
//! `ServiceClient` speaking the line-delimited JSON protocol (the
//! bike-rental scenario of Table 1), then **stops the server mid-demo and
//! boots a fresh one from the same directory**: the rebuilt shards serve
//! the same match results without any client re-subscribing, courtesy of
//! the per-shard write-ahead log + snapshots (`psc_service::storage`).
//!
//! Run with: `cargo run --release --example service_demo`

use psc::model::{Publication, Schema, Subscription, SubscriptionId};
use psc::service::storage::FsyncPolicy;
use psc::service::{ServiceClient, ServiceConfig, ServiceServer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The bike-rental schema from Table 1 of the paper.
    let schema = Schema::builder()
        .attribute("bID", 0, 10_000)
        .attribute("size", 10, 30)
        .attribute("brand", 0, 50)
        .attribute("rpID", 0, 1_000)
        .attribute("date", 0, 1_000_000)
        .build();

    let data_dir = std::env::temp_dir().join(format!("psc-service-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    let config = ServiceConfig {
        shards: 4,
        batch_size: 8,
        data_dir: Some(data_dir.clone()),
        // Demo cadence: snapshot quickly so the restart exercises both
        // snapshot restore and WAL replay. `fsync: Never` keeps the demo
        // snappy; production would keep the `Always` default.
        fsync: FsyncPolicy::Never,
        snapshot_every: 2,
        ..Default::default()
    };

    let server = ServiceServer::bind("127.0.0.1:0", schema.clone(), config.clone())?;
    println!(
        "service listening on {} (data_dir: {})",
        server.local_addr(),
        data_dir.display()
    );

    let mut client = ServiceClient::connect(server.local_addr())?;
    let (schema, shards) = client.hello()?;
    println!("handshake: {} attributes, {shards} shards", schema.len());

    // A broad subscription (all bikes at rental point 820-840) and two
    // narrower ones it covers. Subscriptions are hash-routed by id, and
    // covering is exploited per shard: id 3 lands on the broad
    // subscription's shard and is suppressed from active matching, while
    // id 2 hashes to a different shard and stays active there (cross-shard
    // covers are intentionally not consulted).
    let broad = Subscription::builder(&schema)
        .range("bID", 0, 10_000)
        .range("size", 10, 30)
        .range("brand", 0, 50)
        .range("rpID", 820, 840)
        .range("date", 0, 1_000_000)
        .build()?;
    let narrow_a = Subscription::builder(&schema)
        .range("bID", 1_000, 1_999)
        .point("size", 19)
        .point("brand", 7)
        .range("rpID", 820, 840)
        .range("date", 57_600, 72_000)
        .build()?;
    let narrow_b = Subscription::builder(&schema)
        .range("bID", 2_000, 2_499)
        .range("size", 15, 25)
        .range("brand", 0, 50)
        .range("rpID", 825, 835)
        .range("date", 0, 500_000)
        .build()?;

    client.subscribe(SubscriptionId(1), &broad)?;
    client.subscribe(SubscriptionId(2), &narrow_a)?;
    client.subscribe(SubscriptionId(3), &narrow_b)?;
    client.flush()?;

    // A publication inside the broad subscription and narrow_a (its bID
    // is outside narrow_b's 2000-2499 window).
    let p1 = Publication::builder(&schema)
        .set("bID", 1_036)
        .set("size", 19)
        .set("brand", 7)
        .set("rpID", 825)
        .set("date", 66_185)
        .build()?;
    let before_restart = client.publish(&p1)?;
    println!("publish p1 -> matched {before_restart:?}");

    // A publication outside every subscription's rpID window.
    let p2 = Publication::builder(&schema)
        .set("bID", 1_036)
        .set("size", 19)
        .set("brand", 7)
        .set("rpID", 100)
        .set("date", 66_185)
        .build()?;
    println!("publish p2 -> matched {:?}", client.publish(&p2)?);

    // Churn some short-lived subscriptions so every shard appends enough
    // WAL records to cross `snapshot_every` and write a snapshot — the
    // restart below then exercises snapshot restore *plus* replay of the
    // post-snapshot log suffix, not just pure WAL replay.
    for id in 100..112u64 {
        let throwaway = Subscription::builder(&schema)
            .range("bID", 0, 100 + id as i64)
            .build()?;
        client.subscribe(SubscriptionId(id), &throwaway)?;
        client.flush()?;
        client.unsubscribe(SubscriptionId(id))?;
    }

    // ---- Restart: stop the server, boot a new one from the same dir ----
    drop(client);
    server.stop();
    let snapshotted = (0..4)
        .filter(|i| {
            data_dir
                .join(format!("shard-{i}"))
                .join("snapshot.bin")
                .exists()
        })
        .count();
    assert!(
        snapshotted > 0,
        "demo churn must have produced at least one shard snapshot"
    );
    println!(
        "\nserver stopped ({snapshotted}/4 shards snapshotted); restarting from {}",
        data_dir.display()
    );
    let server = ServiceServer::bind("127.0.0.1:0", schema.clone(), config)?;
    let mut client = ServiceClient::connect(server.local_addr())?;

    let recovered = client.stats()?.totals().subscriptions_recovered;
    println!(
        "rebooted on {} with {recovered} recovered subscriptions",
        server.local_addr()
    );
    let after_restart = client.publish(&p1)?;
    println!("publish p1 -> matched {after_restart:?} (no client re-subscribed)");
    assert_eq!(
        before_restart, after_restart,
        "recovery must reproduce pre-restart match results"
    );
    assert_eq!(recovered, 3, "all three subscriptions survived the restart");

    // Unsubscribe the broad subscription: its suppressed child (narrow_b)
    // is promoted back to active matching, and narrow_a still matches p1
    // from its own shard.
    client.unsubscribe(SubscriptionId(1))?;
    println!(
        "after unsubscribe(1), p1 -> matched {:?}",
        client.publish(&p1)?
    );

    println!("\n{}", client.stats()?);
    server.stop();
    std::fs::remove_dir_all(&data_dir)?;
    Ok(())
}
