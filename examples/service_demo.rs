//! Client/server demo of the sharded pub/sub service.
//!
//! Starts a `ServiceServer` on a loopback port, drives it from a
//! `ServiceClient` speaking the line-delimited JSON protocol, and prints
//! the match results and the per-shard metrics — the bike-rental scenario
//! of Table 1, served over TCP.
//!
//! Run with: `cargo run --release --example service_demo`

use psc::model::{Publication, Schema, Subscription, SubscriptionId};
use psc::service::{ServiceClient, ServiceConfig, ServiceServer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The bike-rental schema from Table 1 of the paper.
    let schema = Schema::builder()
        .attribute("bID", 0, 10_000)
        .attribute("size", 10, 30)
        .attribute("brand", 0, 50)
        .attribute("rpID", 0, 1_000)
        .attribute("date", 0, 1_000_000)
        .build();

    let server = ServiceServer::bind(
        "127.0.0.1:0",
        schema,
        ServiceConfig {
            shards: 4,
            batch_size: 8,
            ..Default::default()
        },
    )?;
    println!("service listening on {}", server.local_addr());

    let mut client = ServiceClient::connect(server.local_addr())?;
    let (schema, shards) = client.hello()?;
    println!("handshake: {} attributes, {shards} shards", schema.len());

    // A broad subscription (all bikes at rental point 820-840) and two
    // narrower ones it covers. Subscriptions are hash-routed by id, and
    // covering is exploited per shard: id 3 lands on the broad
    // subscription's shard and is suppressed from active matching, while
    // id 2 hashes to a different shard and stays active there (cross-shard
    // covers are intentionally not consulted).
    let broad = Subscription::builder(&schema)
        .range("bID", 0, 10_000)
        .range("size", 10, 30)
        .range("brand", 0, 50)
        .range("rpID", 820, 840)
        .range("date", 0, 1_000_000)
        .build()?;
    let narrow_a = Subscription::builder(&schema)
        .range("bID", 1_000, 1_999)
        .point("size", 19)
        .point("brand", 7)
        .range("rpID", 820, 840)
        .range("date", 57_600, 72_000)
        .build()?;
    let narrow_b = Subscription::builder(&schema)
        .range("bID", 2_000, 2_499)
        .range("size", 15, 25)
        .range("brand", 0, 50)
        .range("rpID", 825, 835)
        .range("date", 0, 500_000)
        .build()?;

    client.subscribe(SubscriptionId(1), &broad)?;
    client.subscribe(SubscriptionId(2), &narrow_a)?;
    client.subscribe(SubscriptionId(3), &narrow_b)?;
    client.flush()?;

    // A publication inside the broad subscription and narrow_a (its bID
    // is outside narrow_b's 2000-2499 window).
    let p1 = Publication::builder(&schema)
        .set("bID", 1_036)
        .set("size", 19)
        .set("brand", 7)
        .set("rpID", 825)
        .set("date", 66_185)
        .build()?;
    println!("publish p1 -> matched {:?}", client.publish(&p1)?);

    // A publication outside every subscription's rpID window.
    let p2 = Publication::builder(&schema)
        .set("bID", 1_036)
        .set("size", 19)
        .set("brand", 7)
        .set("rpID", 100)
        .set("date", 66_185)
        .build()?;
    println!("publish p2 -> matched {:?}", client.publish(&p2)?);

    // Unsubscribe the broad subscription: its suppressed child (narrow_b)
    // is promoted back to active matching, and narrow_a still matches p1
    // from its own shard.
    client.unsubscribe(SubscriptionId(1))?;
    println!(
        "after unsubscribe(1), p1 -> matched {:?}",
        client.publish(&p1)?
    );

    println!("\n{}", client.stats()?);
    server.stop();
    Ok(())
}
