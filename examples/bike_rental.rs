//! The sensor-enriched bicycle rental system of the paper's Section 3
//! (Table 1): user preferences become subscriptions, detected bikes become
//! publications, and the covering store keeps the active set minimal.
//!
//! Run with: `cargo run --example bike_rental`

use psc::core::SubsumptionChecker;
use psc::matcher::CoveringStore;
use psc::model::{Publication, Schema, Subscription, SubscriptionId};
use psc::workload::seeded_rng;

/// Seconds since midnight for readability.
const fn hm(h: i64, m: i64) -> i64 {
    h * 3600 + m * 60
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Table 1's five attributes. Brands are enumerated: X = 7, Y = 8.
    let schema = Schema::builder()
        .attribute("bID", 0, 10_000) // bike identifier ranges encode categories
        .attribute("size", 10, 30) // frame size in inches
        .attribute("brand", 0, 50)
        .attribute("rpID", 0, 1_000) // rental-post identifiers encode areas
        .attribute("time", 0, 86_400) // time of day, seconds
        .build();

    // s1: "lady mountain bike size 19, brand X, near home, Friday evening".
    let s1 = Subscription::builder(&schema)
        .range("bID", 1000, 1999)
        .point("size", 19)
        .point("brand", 7)
        .range("rpID", 820, 840)
        .range("time", hm(16, 0), hm(20, 0))
        .build()?;

    // s2: "any bike sizes 17–19 within 500 m, lunch break".
    let s2 = Subscription::builder(&schema)
        .range("bID", 1, 1999)
        .range("size", 17, 19)
        .range("rpID", 10, 12)
        .range("time", hm(12, 0), hm(14, 0))
        .build()?;

    // A third subscriber wants exactly what s2 wants, but only size 19 at
    // post 11 — covered by s2, so brokers need not propagate it.
    let s3 = Subscription::builder(&schema)
        .range("bID", 500, 1500)
        .point("size", 19)
        .point("rpID", 11)
        .range("time", hm(12, 30), hm(13, 30))
        .build()?;

    let mut store = CoveringStore::new(
        SubsumptionChecker::builder()
            .error_probability(1e-8)
            .build(),
    );
    let mut rng = seeded_rng(7);
    for (id, sub) in [(1u64, &s1), (2, &s2), (3, &s3)] {
        let outcome = store.insert(SubscriptionId(id), sub.clone(), &mut rng);
        println!(
            "subscription s{id}: {}",
            if outcome.is_active() {
                "active (forwarded)"
            } else {
                "covered (parked)"
            }
        );
    }
    println!(
        "active set: {} of {} subscriptions\n",
        store.active_len(),
        store.len()
    );

    // p1 matches s1; p2 matches s2 and s3 (Table 1's publications).
    let p1 = Publication::builder(&schema)
        .set("bID", 1036)
        .set("size", 19)
        .set("brand", 7)
        .set("rpID", 825)
        .set("time", hm(18, 23))
        .build()?;
    let p2 = Publication::builder(&schema)
        .set("bID", 1035)
        .set("size", 19)
        .set("brand", 8)
        .set("rpID", 11)
        .set("time", hm(12, 23))
        .build()?;

    for (name, p) in [("p1", &p1), ("p2", &p2)] {
        let matched = store.match_publication(p);
        let ids: Vec<String> = matched.iter().map(|s| format!("s{}", s.0)).collect();
        println!("{name} {p} -> notify [{}]", ids.join(", "));
    }

    let stats = store.stats();
    println!(
        "\nmatch cost: {} active checks, {} covered checks, {} gated out",
        stats.active_checked, stats.covered_checked, stats.covered_skipped
    );
    Ok(())
}
