//! Standalone pub/sub server for manual driving.
//!
//! Binds the bike-rental schema service on the given address (default
//! `127.0.0.1:7878`) and serves the line-delimited JSON protocol until
//! killed. Talk to it with anything that speaks TCP lines:
//!
//! ```text
//! $ cargo run --release --example service_server &
//! $ printf '{"op":"hello"}\n' | nc 127.0.0.1 7878
//! ```

use psc::model::Schema;
use psc::service::{ServiceConfig, ServiceServer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let shards = std::env::args()
        .nth(2)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(4);

    // The bike-rental schema from Table 1 of the paper.
    let schema = Schema::builder()
        .attribute("bID", 0, 10_000)
        .attribute("size", 10, 30)
        .attribute("brand", 0, 50)
        .attribute("rpID", 0, 1_000)
        .attribute("date", 0, 1_000_000)
        .build();

    let server = ServiceServer::bind(&addr, schema, ServiceConfig::with_shards(shards))?;
    println!(
        "psc-service listening on {} ({} shards); Ctrl-C to stop",
        server.local_addr(),
        shards
    );
    loop {
        std::thread::park();
    }
}
