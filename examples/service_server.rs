//! Standalone pub/sub server for manual driving.
//!
//! Binds the bike-rental schema service on the given address (default
//! `127.0.0.1:7878`) and serves the line-delimited JSON protocol from the
//! epoll reactor until killed. Talk to it with anything that speaks TCP
//! lines:
//!
//! ```text
//! $ cargo run --release --example service_server &
//! $ printf '{"op":"hello"}\n' | nc 127.0.0.1 7878
//! ```
//!
//! Usage: `service_server [addr] [shards] [max_conns] [idle_secs] [data_dir]`
//! (`idle_secs` of 0 disables idle reaping, the default; passing a
//! `data_dir` makes the shard stores durable — kill the server, start it
//! again on the same directory, and subscriptions survive).

use psc::model::Schema;
use psc::service::{ServiceConfig, ServiceServer};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let addr = args.next().unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let shards: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(4);
    let max_connections: usize = args
        .next()
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(ServiceConfig::default().max_connections);
    let idle_secs: u64 = args.next().map(|s| s.parse()).transpose()?.unwrap_or(0);
    let data_dir = args.next().map(std::path::PathBuf::from);

    // The bike-rental schema from Table 1 of the paper.
    let schema = Schema::builder()
        .attribute("bID", 0, 10_000)
        .attribute("size", 10, 30)
        .attribute("brand", 0, 50)
        .attribute("rpID", 0, 1_000)
        .attribute("date", 0, 1_000_000)
        .build();

    let config = ServiceConfig {
        shards,
        max_connections,
        idle_timeout: (idle_secs > 0).then(|| Duration::from_secs(idle_secs)),
        data_dir: data_dir.clone(),
        ..Default::default()
    };
    let server = ServiceServer::bind(&addr, schema, config)?;
    println!(
        "psc-service listening on {} ({} shards, one reactor thread, \
         max {} connections, idle timeout {}, storage {}); Ctrl-C to stop",
        server.local_addr(),
        shards,
        max_connections,
        if idle_secs > 0 {
            format!("{idle_secs}s")
        } else {
            "off".to_string()
        },
        match &data_dir {
            Some(dir) => format!("durable at {}", dir.display()),
            None => "in-memory".to_string(),
        },
    );
    loop {
        std::thread::park();
    }
}
