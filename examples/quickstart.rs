//! Quickstart: the paper's Table 3 example, end to end.
//!
//! Run with: `cargo run --example quickstart`

use psc::core::{CoverAnswer, DecisionStage, ExactChecker, SubsumptionChecker};
use psc::model::{Schema, Subscription};
use psc::workload::seeded_rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two attributes, as in Figure 2 of the paper.
    let schema = Schema::builder()
        .attribute("x1", 800, 900)
        .attribute("x2", 1000, 1010)
        .build();

    // The new subscription s and the existing set {s1, s2} (Table 3).
    let s = Subscription::builder(&schema)
        .range("x1", 830, 870)
        .range("x2", 1003, 1006)
        .build()?;
    let s1 = Subscription::builder(&schema)
        .range("x1", 820, 850)
        .range("x2", 1001, 1007)
        .build()?;
    let s2 = Subscription::builder(&schema)
        .range("x1", 840, 880)
        .range("x2", 1002, 1009)
        .build()?;

    println!("s  = {s}");
    println!("s1 = {s1}");
    println!("s2 = {s2}");
    println!();
    println!(
        "Neither s1 nor s2 covers s: {}",
        !s1.covers(&s) && !s2.covers(&s)
    );

    // The probabilistic pipeline: conflict table, fast paths, MCS, RSPC.
    let checker = SubsumptionChecker::builder()
        .error_probability(1e-10)
        .build();
    let mut rng = seeded_rng(42);
    let set = vec![s1, s2];
    let decision = checker.check(&s, &set, &mut rng);

    match &decision.answer {
        CoverAnswer::Covered { error_bound } => {
            println!(
                "pipeline: s IS covered by s1 ∨ s2 (error bound {error_bound:.2e}, stage {:?})",
                decision.stage
            );
        }
        CoverAnswer::NotCovered { witness } => {
            println!("pipeline: s is NOT covered (witness: {witness:?})");
        }
    }
    println!(
        "stats: k={} → {} after MCS, ρw={:.4}, RSPC iterations {}",
        decision.stats.k_initial,
        decision.stats.k_after_mcs,
        decision.stats.rho_w,
        decision.stats.rspc_iterations,
    );
    assert_eq!(decision.stage, DecisionStage::Rspc);

    // Cross-check with the exact (exponential) decision procedure.
    let exact = ExactChecker::default().is_covered(&s, &set)?;
    println!("exact checker agrees: {}", exact == decision.is_covered());
    Ok(())
}
