//! Grid resource discovery (the paper's Section 3, Table 2): services
//! announce capabilities as subscriptions; jobs are publications matched to
//! capable services. Context changes make subscriptions churn, so group
//! coverage keeps the propagated set small.
//!
//! Run with: `cargo run --example grid_discovery`

use psc::core::{PairwiseChecker, SubsumptionChecker};
use psc::model::{Publication, Schema, Subscription};
use psc::workload::seeded_rng;
use rand::Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Table 2's attributes: CPU cycles, disk, memory, service id, time.
    let schema = Schema::builder()
        .attribute("cpu", 0, 10_000) // MHz-scale cycles
        .attribute("disk", 0, 1_000) // kB
        .attribute("mem", 0, 64) // GB
        .attribute("service", 0, 500) // enumerated service endpoints
        .attribute("time", 0, 86_400)
        .build();

    // Service announcements. A service that can spare C cycles, D disk and
    // M memory accepts any job requiring at most that much, so capability
    // subscriptions are corner-anchored boxes [0,C] × [0,D] × [0,M]; the
    // service-id and availability-window attributes restrict who/when.
    // Smaller machines announcing inside bigger machines' windows is what
    // makes coverage (pairwise and group) effective.
    let mut rng = seeded_rng(2006);
    let mut announcements: Vec<Subscription> = Vec::new();
    for _ in 0..200 {
        let cpu_cap = rng.gen_range(1_000..=10_000);
        let disk_cap = rng.gen_range(100..=1_000);
        let mem_cap = rng.gen_range(4..=64);
        let mut b = Subscription::builder(&schema)
            .range("cpu", 0, cpu_cap)
            .range("disk", 0, disk_cap)
            .range("mem", 0, mem_cap);
        // Most services accept any endpoint; some serve one group only.
        if rng.gen_bool(0.3) {
            let svc = rng.gen_range(0..50) * 10;
            b = b.range("service", svc, svc + 9);
        }
        // Half announce a bounded availability window.
        if rng.gen_bool(0.5) {
            let start = rng.gen_range(0..70_000);
            b = b.range(
                "time",
                start,
                (start + rng.gen_range(14_400i64..43_200)).min(86_400),
            );
        }
        announcements.push(b.build()?);
    }

    // Filter the announcement stream with both policies.
    let checker = SubsumptionChecker::builder()
        .error_probability(1e-6)
        .max_iterations(2_000)
        .build();
    let mut pairwise_active: Vec<Subscription> = Vec::new();
    let mut group_active: Vec<Subscription> = Vec::new();
    for sub in &announcements {
        if !PairwiseChecker.is_covered(sub, &pairwise_active) {
            pairwise_active.push(sub.clone());
        }
        if !checker.check(sub, &group_active, &mut rng).is_covered() {
            group_active.push(sub.clone());
        }
    }
    println!("service announcements: {}", announcements.len());
    println!("active after pairwise coverage: {}", pairwise_active.len());
    println!("active after group coverage:    {}", group_active.len());
    println!(
        "group/pairwise ratio: {:.2}\n",
        group_active.len() as f64 / pairwise_active.len() as f64
    );

    // A job looking for a service (Table 2's p1-style requirement).
    let job = Publication::builder(&schema)
        .set("cpu", 3_500)
        .set("disk", 45)
        .set("mem", 16)
        .set("service", 120)
        .set("time", 16 * 3600)
        .build()?;

    // Match against the reduced active set first (Algorithm 5's phase 1
    // semantics: if nothing active matches, nothing covered can).
    let active_hits = group_active.iter().filter(|s| s.matches(&job)).count();
    let all_hits = announcements.iter().filter(|s| s.matches(&job)).count();
    println!("job {job}");
    println!("capable services: {all_hits} total, {active_hits} in the active set");
    assert!(
        (all_hits == 0) == (active_hits == 0),
        "active set must preserve matchability"
    );
    Ok(())
}
