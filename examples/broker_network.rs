//! The paper's Figure 1 broker network under all three covering policies,
//! plus the Proposition 5 chain analysis.
//!
//! Run with: `cargo run --example broker_network`

use psc::broker::propagation::{find_probability, simulate_chain};
use psc::broker::{BrokerId, CoveringPolicy, Network, Topology};
use psc::model::{Publication, Schema, Subscription, SubscriptionId};
use psc::workload::seeded_rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = Schema::uniform(1, 0, 99);
    let s1 = Subscription::builder(&schema).range("x0", 0, 50).build()?;
    let s2 = Subscription::builder(&schema).range("x0", 10, 20).build()?; // s2 ⊑ s1
    let n1 = Publication::builder(&schema).set("x0", 15).build()?;
    let n2 = Publication::builder(&schema).set("x0", 40).build()?;
    let b = |i: usize| BrokerId(i - 1);

    println!("Figure 1 network: S1@B1 subscribes s1; S2@B6 subscribes s2 ⊑ s1\n");
    for policy in [
        CoveringPolicy::Flooding,
        CoveringPolicy::Pairwise,
        CoveringPolicy::group(1e-10),
    ] {
        let name = policy.name();
        let mut net = Network::new(Topology::figure1(), policy, 1);
        net.subscribe(b(1), SubscriptionId(1), s1.clone());
        net.subscribe(b(6), SubscriptionId(2), s2.clone());
        let m = net.metrics();
        println!(
            "{name:>9}: {} subscription msgs ({} suppressed by covering)",
            m.subscription_messages, m.subscriptions_suppressed
        );

        let r1 = net.publish(b(9), &n1);
        let r2 = net.publish(b(5), &n2);
        let tree = |v: &[BrokerId]| {
            let mut n: Vec<String> = v.iter().map(|x| x.to_string()).collect();
            n.sort();
            n.join(",")
        };
        println!(
            "{:>9}  n1@B9 tree [{}] -> {} deliveries; n2@B5 tree [{}] -> {} deliveries",
            "",
            tree(&r1.visited),
            r1.delivered_to.len(),
            tree(&r2.visited),
            r2.delivered_to.len()
        );
    }

    // Proposition 5: what an erroneous covering decision costs on a chain.
    println!("\nProposition 5 (chain of n brokers, rho = 0.2, rho_w = 0.01):");
    println!(
        "{:>3} {:>6} {:>10} {:>10}",
        "n", "d", "analytic", "simulated"
    );
    let mut rng = seeded_rng(5);
    for n in [2usize, 4, 8] {
        for d in [50u64, 500] {
            let analytic = find_probability(n, 0.2, 0.01, d);
            let simulated = simulate_chain(n, 0.2, 0.01, d, 100_000, &mut rng);
            println!("{n:>3} {d:>6} {analytic:>10.4} {simulated:>10.4}");
        }
    }
    Ok(())
}
