//! # psc — Probabilistic Subsumption Checking for Content-Based Pub/Sub
//!
//! Facade crate re-exporting the full workspace: a reproduction of
//! *"Efficient Probabilistic Subsumption Checking for Content-based
//! Publish/Subscribe Systems"* (Ouksel, Jurca, Podnar, Aberer — Middleware
//! 2006).
//!
//! The workspace implements:
//!
//! - [`model`] — attribute schemas, range predicates, subscriptions
//!   (hyper-rectangles) and publications (points);
//! - [`core`] — the paper's contribution: conflict tables, the RSPC
//!   Monte-Carlo cover test, the MCS subscription-set reduction, fast
//!   deterministic decision rules, and an exact reference checker;
//! - [`workload`] — every subscription-generation scenario from the paper's
//!   evaluation (Section 6);
//! - [`matcher`] — publication matching engines (naive, counting-index, and
//!   the paper's two-phase covered/uncovered store);
//! - [`broker`] — a distributed broker-network simulator with reverse-path
//!   forwarding and pluggable covering policies;
//! - [`service`] — a sharded, multi-threaded pub/sub service wrapping the
//!   matcher behind a concurrent API and a line-delimited JSON TCP protocol;
//! - [`experiments`] — the harness regenerating every figure of the paper.
//!
//! ## Quickstart
//!
//! ```
//! use psc::prelude::*;
//!
//! // Table 3 of the paper: s is covered by s1 ∪ s2 but by neither alone.
//! let schema = Schema::builder()
//!     .attribute("x1", 800, 900)
//!     .attribute("x2", 1000, 1010)
//!     .build();
//! let s = Subscription::builder(&schema)
//!     .range("x1", 830, 870).range("x2", 1003, 1006).build()?;
//! let s1 = Subscription::builder(&schema)
//!     .range("x1", 820, 850).range("x2", 1001, 1007).build()?;
//! let s2 = Subscription::builder(&schema)
//!     .range("x1", 840, 880).range("x2", 1002, 1009).build()?;
//!
//! let checker = SubsumptionChecker::builder().error_probability(1e-10).build();
//! let mut rng = seeded_rng(42);
//! let decision = checker.check(&s, &[s1, s2], &mut rng);
//! assert!(decision.is_covered());
//! # Ok::<(), psc::model::ModelError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]

pub use psc_broker as broker;
pub use psc_core as core;
pub use psc_experiments as experiments;
pub use psc_matcher as matcher;
pub use psc_model as model;
pub use psc_service as service;
pub use psc_workload as workload;

/// Convenience re-exports for the most common entry points.
pub mod prelude {
    pub use psc_core::{
        CoverAnswer, CoverDecision, PairwiseChecker, SubsumptionChecker, SubsumptionConfig,
    };
    pub use psc_model::{AttrId, Publication, Range, Schema, Subscription, SubscriptionId};
    pub use psc_service::{PubSubService, ServiceClient, ServiceConfig, ServiceServer};
    pub use psc_workload::seeded_rng;
}
